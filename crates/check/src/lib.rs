//! `bertha-check`: a dependency-free source analyzer for the Bertha
//! workspace, plus a small exhaustive-interleaving model checker.
//!
//! The analyzer walks `crates/**/*.rs` and enforces nine invariant
//! families (DESIGN.md §10):
//!
//! 1. **wire-tags** — every framing tag byte is defined in
//!    `bertha::negotiate::wire`, and no two tags on one channel collide;
//! 2. **panic-lint** — no `unwrap()`/`expect()`/panicking macros/slice
//!    indexing in designated data-plane hot-path modules;
//! 3. **metric-names** — telemetry names emitted by code, documented in
//!    DESIGN.md §9, and recorded in `results/baselines/` agree;
//! 4. **fallback** — every capability registered at an accelerated scope
//!    has a software (Application-scope) `Negotiate` implementation;
//! 5. **journal-replay** — every journal `Record` variant has a matching
//!    replay arm in the discovery agent's recovery path, with no
//!    wildcard arm hiding a missing one;
//! 6. **span-names** — trace span ops passed to `span::record*` follow
//!    `<subsystem>.<op>` and agree with the DESIGN.md §9 span table in
//!    both directions;
//! 7. **lock-order** — the whole-workspace lock acquisition graph
//!    (guards held across nested acquisitions, one level of intra-crate
//!    call edges) is acyclic, and the surviving edges match the
//!    canonical-order table in DESIGN.md §10;
//! 8. **blocking-in-async** — no blocking lock guard is held across an
//!    `.await`, and no `thread::sleep`/blocking I/O appears in
//!    data-path `async fn` bodies;
//! 9. **hot-alloc** — no `.to_vec()` payload copies or unexplained
//!    payload-ish `.clone()`s in the same hot-path modules: the
//!    zero-copy datapath (DESIGN.md §12) moves bytes once per
//!    direction, and deliberate refcount bumps carry a waiver.
//!
//! Everything is hand-rolled on `std` only, matching the workspace's
//! no-serde_json style: a masking lexer (comments and literals blanked so
//! textual scans cannot false-positive inside them), brace matching for
//! `#[cfg(test)]` regions, and a line parser for the registry and the
//! DESIGN.md metric table.
//!
//! The [`model`] module is the loom-style piece: the real `loom` crate is
//! a heavyweight external dependency, so the same idea — exhaustively
//! exploring every sequentially-consistent interleaving of small critical
//! sections — is implemented in ~100 lines and used to model-check the
//! `SwitchableConn` epoch-swap protocol and the mirrored counters (see
//! `tests/loom_epoch.rs`, gated behind `--cfg loom`).

pub mod checks;
pub mod lexer;
pub mod model;
pub mod selftest;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One finding: a broken invariant at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule family fired (`wire-tags`, `panic-lint`, ...).
    pub rule: &'static str,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// A loaded source file: raw text, masked text (comments and literal
/// contents blanked), and its `#[cfg(test)]` regions.
pub struct SourceFile {
    /// Path relative to the workspace root, with forward slashes.
    pub rel: String,
    /// The file as read.
    pub raw: String,
    /// [`lexer::mask`] of `raw`; same length, same line structure.
    pub masked: String,
    /// Byte ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Build from raw text.
    pub fn from_source(rel: String, raw: String) -> Self {
        let masked = lexer::mask(&raw);
        let test_regions = lexer::test_regions(&masked);
        SourceFile {
            rel,
            raw,
            masked,
            test_regions,
        }
    }

    /// Is this byte offset inside a `#[cfg(test)]` item?
    pub fn in_test(&self, pos: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| pos >= s && pos < e)
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, pos: usize) -> usize {
        let upto = self.raw.as_bytes().get(..pos).unwrap_or_default();
        1 + upto.iter().filter(|&&b| b == b'\n').count()
    }
}

/// Everything a run produced: hard failures and advisory notes.
pub struct Report {
    /// Invariant violations; a non-empty list fails the build.
    pub violations: Vec<Violation>,
    /// Advisory drift notes (printed, never fatal).
    pub notes: Vec<String>,
    /// How many source files were scanned.
    pub files_scanned: usize,
}

fn walk_dir(dir: &Path, skip: &[&str], out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if skip.contains(&name.as_str()) {
                continue;
            }
            walk_dir(&path, skip, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Load every `crates/**/*.rs` under `root`, skipping build output and
/// the checker's own seeded-violation fixtures.
pub fn load_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} is not a workspace root (no crates/)", root.display()),
        ));
    }
    let mut paths = Vec::new();
    walk_dir(&crates, &["target", "fixtures"], &mut paths)?;
    let mut files = Vec::new();
    for p in paths {
        let raw = std::fs::read_to_string(&p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::from_source(rel, raw));
    }
    Ok(files)
}

/// Run every check against the workspace at `root`.
pub fn run(root: &Path) -> io::Result<Report> {
    let files = load_sources(root)?;
    let mut violations = Vec::new();
    let mut notes = Vec::new();

    violations.extend(checks::wire_tags::check(&files));
    violations.extend(checks::panics::check(&files));
    let (mv, mn) = checks::metrics::check(&files, root);
    violations.extend(mv);
    notes.extend(mn);
    let (fv, fn_notes) = checks::fallback::check(&files);
    violations.extend(fv);
    notes.extend(fn_notes);
    violations.extend(checks::journal::check(&files));
    violations.extend(checks::spans::check(&files, root));
    violations.extend(checks::lock_order::check(&files, root));
    violations.extend(checks::blocking::check(&files));
    violations.extend(checks::hot_alloc::check(&files));

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(Report {
        violations,
        notes,
        files_scanned: files.len(),
    })
}

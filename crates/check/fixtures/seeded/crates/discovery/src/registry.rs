//! Seeded violations for the `journal-replay` rule: the replay match is
//! missing `Record::Orphan` and hides the gap behind a wildcard arm.

use super::journal::Record;

pub fn apply_record(rec: Record) {
    match rec {
        Record::Register { name } => install(name),
        Record::Unregister { name } => remove(name),
        _ => {}
    }
}

fn install(_name: String) {}
fn remove(_name: String) {}

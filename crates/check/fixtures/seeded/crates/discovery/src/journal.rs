//! Seeded violations for the `journal-replay` rule: the `Orphan`
//! variant below has no replay arm in this fixture's `registry.rs`.

pub enum Record {
    Register { name: String },
    Unregister { name: String },
    Orphan { id: u64 },
}

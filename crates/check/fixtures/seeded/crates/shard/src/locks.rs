//! Seeded concurrency violations: an opposite-order acquisition cycle,
//! a stale lock-order waiver, a blocking guard held across an `.await`,
//! a temporary guard sharing its statement with an `.await`, and a
//! stale `allow(block)` annotation. One legitimate nested pair
//! (`slots` acquired under `queue`) is also here so the canonical-order
//! table in the seeded DESIGN.md has a valid row.

// check: lock-order(shard.locks.ghost < shard.locks.phantom): seeded stale waiver

pub struct Steering {
    map: parking_lot::Mutex<u32>,
    epoch: parking_lot::Mutex<u32>,
    queue: parking_lot::Mutex<u32>,
    slots: parking_lot::Mutex<u32>,
    tx: tokio::sync::mpsc::Sender<u32>,
}

impl Steering {
    /// Seeded: acquires `map` then `epoch` ...
    pub fn forward(&self) {
        let m = self.map.lock();
        let e = self.epoch.lock();
        let _ = (*m, *e);
    }

    /// ... while this path acquires `epoch` then `map`: a deadlock
    /// cycle the analyzer must report.
    pub fn backward(&self) {
        let e = self.epoch.lock();
        let m = self.map.lock();
        let _ = (*e, *m);
    }

    /// A reviewed nesting: `slots` under `queue`, recorded in the
    /// seeded DESIGN.md canonical-order table.
    pub fn drain(&self) {
        let q = self.queue.lock();
        let s = self.slots.lock();
        let _ = (*q, *s);
    }

    /// Seeded: a blocking guard held across an `.await`.
    pub async fn held_across(&self) {
        let g = self.map.lock();
        self.tx.send(*g).await.ok();
    }

    /// Seeded: a temporary guard sharing its statement with an `.await`.
    pub async fn temporary_across(&self) {
        self.tx.send(*self.epoch.lock()).await.ok();
    }
}

// check: allow(block): seeded stale annotation, suppresses nothing
pub fn nothing_blocking_here() {}

//! Seeded fallback violation: an offload-only capability registered at
//! Host scope with no Application-scope implementation anywhere.

pub fn offload_registration() -> Registration {
    Registration {
        capability: guid("fixture/offload-only"),
        impl_guid: guid("fixture/offload-only/xdp"),
        scope: Scope::Host,
        priority: 10,
    }
}

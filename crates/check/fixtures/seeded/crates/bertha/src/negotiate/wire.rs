//! Seeded wire-tag registry: one orphan tag, one non-hex value, one
//! same-channel collision. The self-test asserts each is flagged.

pub const TAG_ORPHAN: u8 = 0x09;

// channel: demo
pub const TAG_A: u8 = 0x01;
pub const TAG_B: u8 = 0x01;
pub const TAG_BAD: u8 = 3;

// channel: other
pub const TAG_C: u8 = 0x01;

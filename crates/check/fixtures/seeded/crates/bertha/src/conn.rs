//! Seeded hot-path file: a rogue tag constant, a panicking parse, an
//! undocumented metric, a unitless histogram, a `_us` counter, and an
//! undocumented per-layer format template.

pub const ROGUE_TAG: u8 = 0x42;

pub fn recv(buf: &[u8]) -> u8 {
    tele::counter("rogue.metric").incr();
    let first = buf[0];
    Some(first).unwrap()
}

pub fn profile(label: &str, dir: &str) {
    tele::histogram("bad.nounit").record(1);
    tele::counter("bad.time_us").incr();
    let _ = format!("stack.{label}.{dir}_frames");
}

//! Seeded hot-path file: a rogue tag constant, a panicking parse, and
//! an undocumented metric.

pub const ROGUE_TAG: u8 = 0x42;

pub fn recv(buf: &[u8]) -> u8 {
    tele::counter("rogue.metric").incr();
    let first = buf[0];
    Some(first).unwrap()
}

//! Seeded hot-path file: a rogue tag constant, a panicking parse, an
//! undocumented metric, a unitless histogram, a `_us` counter, an
//! undocumented per-layer format template, a malformed span op, an
//! undocumented span op, a blocking sleep in an async fn, a payload
//! copy with a payload-ish clone, and a stale alloc waiver.

pub const ROGUE_TAG: u8 = 0x42;

pub fn recv(buf: &[u8]) -> u8 {
    tele::counter("rogue.metric").incr();
    let first = buf[0];
    Some(first).unwrap()
}

pub fn profile(label: &str, dir: &str) {
    tele::histogram("bad.nounit").record(1);
    tele::counter("bad.time_us").incr();
    let _ = format!("stack.{label}.{dir}_frames");
}

pub async fn drain(&self) {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn trace(ctx: &tele::tracectx::TraceContext, start: std::time::Instant) {
    tele::span::record_local("BadOp", ctx, 0, start, tele::span::SpanStatus::Ok, &[]);
    tele::span::record("rogue.span", "host-a", ctx, 0, start, tele::span::SpanStatus::Ok, &[]);
}

pub fn copy_out(payload: &Frame) -> Vec<u8> {
    let dup = payload.clone();
    dup.to_vec()
}

// check: allow(alloc): nothing below allocates any more
pub fn idle_alloc() {}

//! Exhaustive interleaving exploration of the discovery agent's
//! journal/snapshot/replay protocol (`discovery::journal` +
//! `discovery::registry::log_record`), in the style of loom. Run with
//! `RUSTFLAGS="--cfg loom" cargo test -p bertha-check --test
//! loom_journal`.
//!
//! The durable property: at every instant, replaying `snapshot.bin`
//! then `journal.bin` reconstructs exactly the live state — a crash
//! between any two critical sections loses nothing. The negative
//! scenarios model the pre-fix compaction (snapshot observed, journal
//! truncated as a second step) and assert the explorer finds the
//! record that an interleaved append leaves in neither file.
#![cfg(loom)]

use bertha_check::model::journal::JournalCore;
use bertha_check::model::sched::{explore, step, Step};

/// Scenario 1: two writers race a compaction. Every interleaving must
/// keep replay equal to the live state, at every step and at the end.
#[test]
fn compaction_never_loses_a_racing_append() {
    let threads: Vec<Vec<Step<JournalCore>>> = vec![
        vec![step(|j: &mut JournalCore| j.append_locked(1))],
        vec![step(|j: &mut JournalCore| j.append_locked(2))],
        vec![step(|j: &mut JournalCore| j.compact_locked())],
    ];
    let ok = explore(
        JournalCore::new,
        &threads,
        JournalCore::replay_matches_live,
        JournalCore::replay_matches_live,
    )
    .expect("single-critical-section compaction must never lose an append");
    assert_eq!(ok.schedules, 6);
}

/// Scenario 2: compaction racing appends on both sides plus a second
/// compaction — stacked compactions stay crash-consistent too.
#[test]
fn stacked_compactions_stay_replayable() {
    let threads: Vec<Vec<Step<JournalCore>>> = vec![
        vec![
            step(|j: &mut JournalCore| j.append_locked(1)),
            step(|j: &mut JournalCore| j.append_locked(2)),
        ],
        vec![
            step(|j: &mut JournalCore| j.compact_locked()),
            step(|j: &mut JournalCore| j.compact_locked()),
        ],
    ];
    explore(
        JournalCore::new,
        &threads,
        JournalCore::replay_matches_live,
        |j| {
            j.replay_matches_live()?;
            if j.live == vec![1, 2] {
                Ok(())
            } else {
                Err(format!("appends lost from live state: {:?}", j.live))
            }
        },
    )
    .expect("stacked compactions must preserve every append");
}

/// Scenario 3 (negative): the pre-fix two-step compaction. The explorer
/// must find the schedule where an append lands between the snapshot
/// observation and the journal truncation — that record is recovered by
/// no crash-restart.
#[test]
fn split_compaction_loses_an_interleaved_append() {
    let threads: Vec<Vec<Step<JournalCore>>> = vec![
        vec![step(|j: &mut JournalCore| j.append_locked(1))],
        vec![
            step(|j: &mut JournalCore| j.compact_observe()),
            step(|j: &mut JournalCore| j.compact_act()),
        ],
    ];
    let err = explore(
        JournalCore::new,
        &threads,
        JournalCore::replay_matches_live,
        JournalCore::replay_matches_live,
    )
    .expect_err("the explorer must detect the snapshot/truncate window");
    assert!(
        err.msg.contains("record lost between snapshot and truncation"),
        "expected the lost-record counterexample, got: {}",
        err.msg
    );
}

//! Exhaustive interleaving exploration of the trace collector's
//! ingest → tail-decision → ring-persistence pipeline
//! (`discovery::collector::SpanCollector`), in the style of loom. Run
//! with `RUSTFLAGS="--cfg loom" cargo test -p bertha-check --test
//! loom_collector`.
//!
//! The collector persists kept traces *outside* its inner lock, so the
//! protocol under test is stamp-guarded persistence: a queued write
//! only lands if its stamp still owns the ring slot. The negative
//! scenario models the pre-fix unconditional write and asserts the
//! explorer finds the slot-clobbering interleaving.
#![cfg(loom)]

use bertha_check::model::collector::CollectorCore;
use bertha_check::model::sched::{explore, step, Step};

/// Scenario 1: two traces race through keep + persist with a ring big
/// enough for both. Disk must end up mirroring the ring under every
/// schedule.
#[test]
fn concurrent_keeps_mirror_to_disk() {
    let threads: Vec<Vec<Step<CollectorCore>>> = vec![
        vec![
            step(|c: &mut CollectorCore| c.keep_locked(1)),
            step(|c: &mut CollectorCore| c.persist_guarded(1)),
        ],
        vec![
            step(|c: &mut CollectorCore| c.keep_locked(2)),
            step(|c: &mut CollectorCore| c.persist_guarded(2)),
        ],
    ];
    let ok = explore(
        || {
            let mut c = CollectorCore::new(2, 8);
            c.ingest_locked(1);
            c.ingest_locked(2);
            c
        },
        &threads,
        CollectorCore::states_disjoint,
        CollectorCore::disk_mirrors_ring,
    )
    .expect("guarded persistence must keep disk and ring in agreement");
    assert_eq!(ok.schedules, 6);
}

/// Scenario 2: ring wrap — capacity 1, so the second keep reuses the
/// first trace's slot while the first write may still be in flight.
/// Stamp guarding must drop the stale write under every schedule.
#[test]
fn ring_wrap_suppresses_the_stale_write() {
    let threads: Vec<Vec<Step<CollectorCore>>> = vec![
        vec![
            step(|c: &mut CollectorCore| c.keep_locked(1)),
            step(|c: &mut CollectorCore| c.persist_guarded(1)),
        ],
        vec![
            step(|c: &mut CollectorCore| c.keep_locked(2)),
            step(|c: &mut CollectorCore| c.persist_guarded(2)),
        ],
    ];
    explore(
        || {
            let mut c = CollectorCore::new(1, 8);
            c.ingest_locked(1);
            c.ingest_locked(2);
            c
        },
        &threads,
        CollectorCore::states_disjoint,
        CollectorCore::disk_mirrors_ring,
    )
    .expect("a displaced trace's in-flight write must not clobber the slot");
}

/// Scenario 3: ingest races the pending-cap eviction and the tail
/// decision. A trace is pending, kept, or evicted — never two at once —
/// and whatever is kept ends up on disk.
#[test]
fn ingest_eviction_and_keep_stay_disjoint() {
    let threads: Vec<Vec<Step<CollectorCore>>> = vec![
        vec![
            step(|c: &mut CollectorCore| c.ingest_locked(10)),
            step(|c: &mut CollectorCore| c.ingest_locked(11)),
            step(|c: &mut CollectorCore| c.ingest_locked(12)),
        ],
        vec![
            step(|c: &mut CollectorCore| c.keep_locked(10)),
            step(|c: &mut CollectorCore| c.persist_guarded(10)),
        ],
    ];
    explore(
        || CollectorCore::new(4, 2),
        &threads,
        CollectorCore::states_disjoint,
        |c| {
            c.states_disjoint()?;
            c.disk_mirrors_ring()
        },
    )
    .expect("pending/kept/evicted must partition the traces");
}

/// Scenario 4 (negative): the pre-fix unconditional persist. With a
/// capacity-1 ring the explorer must find the schedule where trace 1's
/// stale bytes land after trace 2 took the slot, leaving disk
/// disagreeing with the ring crash recovery rebuilds from.
#[test]
fn blind_persist_clobbers_the_wrapped_slot() {
    let threads: Vec<Vec<Step<CollectorCore>>> = vec![
        vec![
            step(|c: &mut CollectorCore| c.keep_locked(1)),
            step(|c: &mut CollectorCore| c.persist_blind(1)),
        ],
        vec![
            step(|c: &mut CollectorCore| c.keep_locked(2)),
            step(|c: &mut CollectorCore| c.persist_blind(2)),
        ],
    ];
    let err = explore(
        || {
            let mut c = CollectorCore::new(1, 8);
            c.ingest_locked(1);
            c.ingest_locked(2);
            c
        },
        &threads,
        CollectorCore::states_disjoint,
        CollectorCore::disk_mirrors_ring,
    )
    .expect_err("the explorer must detect the stale-write clobber");
    assert!(
        err.msg.contains("clobbered"),
        "expected a slot-clobber counterexample, got: {}",
        err.msg
    );
}

//! Table-driven test of every waiver form the analyzer understands:
//! `// check: allow(panic)`, `// check: allow(block)`, and
//! `// check: lock-order(<a> < <b>)`. For each family the same three
//! properties must hold: the unwaived snippet trips exactly the seeded
//! finding, the waived snippet suppresses exactly that one finding (and
//! nothing else appears), and a waiver with nothing to excuse is itself
//! reported as stale.

use bertha_check::{checks, SourceFile};

struct Case {
    name: &'static str,
    /// Workspace-relative path the snippet pretends to live at (picked
    /// so the family's scoping rules apply).
    rel: &'static str,
    /// Snippet with one violation and no waiver.
    dirty: &'static str,
    /// Same snippet with the waiver annotation added.
    waived: &'static str,
    /// A waiver annotation with nothing to excuse.
    stale: &'static str,
    rule: &'static str,
    /// Substring of the dirty finding's message.
    needle: &'static str,
}

const CASES: &[Case] = &[
    Case {
        name: "allow(panic) on a hot-path unwrap",
        rel: "crates/bertha/src/conn.rs",
        dirty: "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
        waived: "fn f(x: Option<u8>) -> u8 {\n    // check: allow(panic): fed from a checked table\n    x.unwrap()\n}\n",
        stale: "// check: allow(panic): nothing here\nfn f() -> u8 { 0 }\n",
        rule: "panic-lint",
        needle: "unwrap",
    },
    Case {
        name: "allow(block) on a guard held across .await",
        rel: "crates/bertha/src/negotiate/renegotiate.rs",
        dirty: "async fn f(&self) {\n    let g = self.inbox.lock();\n    self.raw.send(x).await;\n}\n",
        waived: "async fn f(&self) {\n    // check: allow(block): swap is rare and bounded\n    let g = self.inbox.lock();\n    self.raw.send(x).await;\n}\n",
        stale: "fn f() {}\n// check: allow(block): nothing here\n",
        rule: "blocking-in-async",
        needle: "held across",
    },
    Case {
        name: "lock-order(a < b) on an acquisition cycle",
        rel: "crates/bertha/src/conn.rs",
        dirty: "fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\nfn g(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n",
        waived: "// check: lock-order(bertha.conn.beta < bertha.conn.alpha): f and g never run concurrently\nfn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\nfn g(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n",
        stale: "// check: lock-order(bertha.conn.ghost < bertha.conn.phantom): nothing here\nfn f() {}\n",
        rule: "lock-order",
        needle: "lock-order cycle",
    },
];

/// Run one family's check over a single in-memory file. The lock-order
/// family also cross-checks DESIGN.md; pointing it at a directory with
/// no DESIGN.md skips that sub-check, which is what a snippet test
/// wants.
fn run_family(rule: &str, rel: &str, src: &str) -> Vec<bertha_check::Violation> {
    let f = SourceFile::from_source(rel.to_string(), src.to_string());
    let files = [f];
    match rule {
        "panic-lint" => checks::panics::check(&files),
        "blocking-in-async" => checks::blocking::check(&files),
        "lock-order" => {
            let no_design = std::env::temp_dir().join("bertha-check-waiver-test-no-design");
            checks::lock_order::check(&files, &no_design)
        }
        other => panic!("no such rule family: {other}"),
    }
}

#[test]
fn every_waiver_form_parses_suppresses_and_goes_stale() {
    for case in CASES {
        // 1. The dirty snippet trips exactly the seeded finding.
        let dirty = run_family(case.rule, case.rel, case.dirty);
        assert_eq!(
            dirty.len(),
            1,
            "[{}] dirty snippet must produce exactly one finding: {dirty:?}",
            case.name
        );
        assert_eq!(dirty[0].rule, case.rule, "[{}]", case.name);
        assert!(
            dirty[0].msg.contains(case.needle),
            "[{}] finding {:?} must mention {:?}",
            case.name,
            dirty[0].msg,
            case.needle
        );

        // 2. The waiver suppresses that one finding and introduces none.
        let waived = run_family(case.rule, case.rel, case.waived);
        assert!(
            waived.is_empty(),
            "[{}] waived snippet must be clean: {waived:?}",
            case.name
        );

        // 3. A waiver with nothing to excuse is reported as stale.
        let stale = run_family(case.rule, case.rel, case.stale);
        assert_eq!(
            stale.len(),
            1,
            "[{}] stale snippet must produce exactly the staleness finding: {stale:?}",
            case.name
        );
        assert_eq!(stale[0].rule, case.rule, "[{}]", case.name);
        assert!(
            stale[0].msg.contains("stale waiver"),
            "[{}] {:?}",
            case.name,
            stale[0].msg
        );
    }
}

#[test]
fn waivers_without_a_reason_do_not_waive() {
    // Every form requires a non-empty reason after the colon.
    let v = run_family(
        "panic-lint",
        "crates/bertha/src/conn.rs",
        "// check: allow(panic):\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].msg.contains("unwrap"));

    let v = run_family(
        "lock-order",
        "crates/bertha/src/conn.rs",
        "// check: lock-order(bertha.conn.beta < bertha.conn.alpha):\n\
         fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n\
         fn g(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n",
    );
    assert!(
        v.iter().any(|v| v.msg.contains("lock-order cycle")),
        "reasonless lock-order waiver must not break the cycle: {v:?}"
    );
}

//! Exhaustive interleaving exploration of lease renewal vs. the expiry
//! sweep vs. the client's degraded-mode flip (`discovery::registry` +
//! `discovery::client`), in the style of loom. Run with
//! `RUSTFLAGS="--cfg loom" cargo test -p bertha-check --test
//! loom_lease`.
//!
//! Two properties: *no live revocation* (a renewal that wins the
//! registry lock is never thrown away by the sweep) and *transition
//! counting* (concurrent failures flip the degraded flag once, not once
//! per failure). Each gets a fixed-discipline scenario that must pass
//! under every schedule and a pre-fix split-discipline scenario whose
//! counterexample the explorer must find.
#![cfg(loom)]

use bertha_check::model::lease::LeaseCore;
use bertha_check::model::sched::{explore, step, Step};

fn lease_invariants(c: &LeaseCore) -> Result<(), String> {
    c.no_live_revocation()?;
    c.watcher_never_ahead()
}

/// Scenario 1: a renewal races the sweep exactly at the deadline.
/// Whoever wins the lock, the outcome is consistent: either the lease
/// lives on with the new deadline, or it was withdrawn while genuinely
/// expired and the watcher's next poll invalidates the picks.
#[test]
fn renewal_vs_sweep_is_consistent_either_way() {
    let threads: Vec<Vec<Step<LeaseCore>>> = vec![
        vec![step(|c: &mut LeaseCore| c.renew_locked(5))],
        vec![step(|c: &mut LeaseCore| c.sweep_locked())],
        vec![step(|c: &mut LeaseCore| c.watcher_poll())],
    ];
    let ok = explore(
        || {
            let mut c = LeaseCore::new(1);
            c.tick(); // now == deadline: the lease is due
            c
        },
        &threads,
        lease_invariants,
        |c| {
            lease_invariants(c)?;
            if c.registered {
                // The renewal won: deadline pushed out, nothing revoked.
                if c.deadline == c.now + 5 && c.revoked_at.is_none() {
                    Ok(())
                } else {
                    Err(format!("renewed lease in odd state: {c:?}"))
                }
            } else {
                // The sweep won: the withdrawal bumped the version.
                if c.version == 1 {
                    Ok(())
                } else {
                    Err(format!("withdrawal did not publish: {c:?}"))
                }
            }
        },
    )
    .expect("locked renewal and sweep must serialize cleanly");
    assert_eq!(ok.schedules, 6);
}

/// Scenario 2 (negative): the pre-fix sweep observes expiry, a renewal
/// lands, and the sweep acts on its stale answer. The explorer must
/// find the lost-renewal interleaving.
#[test]
fn split_sweep_revokes_a_renewed_lease() {
    let threads: Vec<Vec<Step<LeaseCore>>> = vec![
        vec![step(|c: &mut LeaseCore| c.renew_locked(5))],
        vec![
            step(|c: &mut LeaseCore| c.sweep_observe()),
            step(|c: &mut LeaseCore| c.sweep_act()),
        ],
    ];
    let err = explore(
        || {
            let mut c = LeaseCore::new(1);
            c.tick();
            c
        },
        &threads,
        lease_invariants,
        lease_invariants,
    )
    .expect_err("the explorer must detect the observe/act revocation window");
    assert!(
        err.msg.contains("a renewal was lost"),
        "expected the lost-renewal counterexample, got: {}",
        err.msg
    );
}

/// Scenario 3: two failing calls race the degraded flip (the client's
/// `AtomicBool::swap` discipline) plus a recovery. The flag and the
/// transition counters must agree at every step.
#[test]
fn concurrent_failures_count_one_transition() {
    let threads: Vec<Vec<Step<LeaseCore>>> = vec![
        vec![step(|c: &mut LeaseCore| c.fail_swap())],
        vec![step(|c: &mut LeaseCore| c.fail_swap())],
        vec![step(|c: &mut LeaseCore| c.recover_swap())],
    ];
    explore(
        || LeaseCore::new(1),
        &threads,
        LeaseCore::transitions_consistent,
        |c| {
            c.transitions_consistent()?;
            if c.degraded_entries <= 2 {
                Ok(())
            } else {
                Err(format!("{} entries for two failures", c.degraded_entries))
            }
        },
    )
    .expect("swap-based flips must count transitions exactly");
}

/// Scenario 4 (negative): the pre-fix read-then-store flip. Both
/// failure paths read `degraded == false`, then both store and count —
/// the explorer must find the double-counted transition.
#[test]
fn split_degraded_flip_double_counts() {
    let threads: Vec<Vec<Step<LeaseCore>>> = (0..2usize)
        .map(|i| {
            vec![
                step(move |c: &mut LeaseCore| c.fail_observe(i)),
                step(move |c: &mut LeaseCore| c.fail_act(i)),
            ]
        })
        .collect();
    let err = explore(
        || LeaseCore::new(1),
        &threads,
        LeaseCore::transitions_consistent,
        LeaseCore::transitions_consistent,
    )
    .expect_err("the explorer must detect the read/store double count");
    assert!(
        err.msg.contains("double-counted"),
        "expected the double-count counterexample, got: {}",
        err.msg
    );
}

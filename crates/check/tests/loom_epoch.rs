//! Exhaustive interleaving exploration of the `SwitchableConn`
//! epoch-swap protocol and the telemetry mirrored counters, in the
//! style of loom. Run with `RUSTFLAGS="--cfg loom" cargo test -p
//! bertha-check --test loom_epoch`.
//!
//! Each test builds per-thread step sequences where one step = one
//! critical section of the real code, then checks invariants across
//! every schedule. Scenario 2 is the negative control: it models the
//! pre-fix `route` discipline (epoch observed outside the inbox/future
//! locks) and asserts the explorer *finds* the frame-loss
//! counterexample that motivated the lock-discipline fix in
//! `bertha::negotiate::renegotiate`.
#![cfg(loom)]

use bertha_check::model::counter::Mirrored;
use bertha_check::model::epoch::{EpochCore, Frame};
use bertha_check::model::sched::{explore, step, Step};

fn core_invariants(c: &EpochCore) -> Result<(), String> {
    c.no_stale_acceptance()?;
    c.epoch_monotone()
}

/// Scenario 1: a frame tagged for epoch 1 races `swap_to(1)`. Whether
/// it arrives before the swap (buffered, then flushed) or after
/// (delivered directly), every interleaving must deliver it exactly
/// once.
#[test]
fn swap_vs_route_delivers_exactly_once() {
    let threads: Vec<Vec<Step<EpochCore>>> = vec![
        vec![step(|c: &mut EpochCore| {
            c.route_locked(Frame { id: 1, epoch: 1 })
        })],
        vec![step(|c: &mut EpochCore| c.swap_locked(1))],
    ];
    let ok = explore(EpochCore::new, &threads, core_invariants, |c| {
        c.delivered_exactly_once(1)
    })
    .expect("fixed lock discipline must never lose the frame");
    assert_eq!(ok.schedules, 2);
}

/// Scenario 2 (negative): the pre-fix discipline read the epoch before
/// taking the inbox/future locks. Splitting `route` into observe + act
/// steps, the explorer must find the interleaving where the swap's
/// flush runs between them: the epoch-1 frame is then filed into the
/// future buffer *after* epoch 1 was installed and flushed, stranding
/// it forever.
#[test]
fn racy_route_discipline_loses_frames() {
    let threads: Vec<Vec<Step<EpochCore>>> = vec![
        vec![
            step(|c: &mut EpochCore| c.route_observe()),
            step(|c: &mut EpochCore| c.route_act(Frame { id: 1, epoch: 1 })),
        ],
        vec![step(|c: &mut EpochCore| c.swap_locked(1))],
    ];
    let err = explore(EpochCore::new, &threads, core_invariants, |c| {
        c.delivered_exactly_once(1)
    })
    .expect_err("the explorer must detect the pre-fix frame-loss bug");
    assert!(
        err.msg.contains("stranded"),
        "expected a stranded-frame counterexample, got: {}",
        err.msg
    );
}

/// Scenario 3: a stale duplicate (epoch 0 copy of an already-swapped
/// frame id) races the swap and a fresh epoch-1 frame. No interleaving
/// may deliver the stale copy after the swap, and the fresh frame is
/// delivered exactly once — the anti-double-delivery property the
/// drain protocol is for.
#[test]
fn stale_duplicate_is_never_delivered_after_swap() {
    let threads: Vec<Vec<Step<EpochCore>>> = vec![
        vec![step(|c: &mut EpochCore| {
            c.route_locked(Frame { id: 7, epoch: 0 })
        })],
        vec![step(|c: &mut EpochCore| c.swap_locked(1))],
        vec![step(|c: &mut EpochCore| {
            c.route_locked(Frame { id: 8, epoch: 1 })
        })],
    ];
    explore(EpochCore::new, &threads, core_invariants, |c| {
        // The stale copy either made it in at epoch 0 (before the swap)
        // or was dropped — but it is never accepted at epoch 1.
        for (f, at) in &c.inbox {
            if f.id == 7 && *at != 0 {
                return Err("stale duplicate delivered after swap".to_string());
            }
        }
        if c.delivered(7) > 1 {
            return Err("duplicate delivery".to_string());
        }
        c.delivered_exactly_once(8)
    })
    .expect("drain protocol must stop cross-epoch duplicates");
}

/// Scenario 4: two stacked swaps (1 then 2, possibly observed out of
/// order) race an epoch-2 frame and an untagged frame. The installed
/// epoch must stay monotone, land at 2, and both frames deliver exactly
/// once.
#[test]
fn double_swap_stays_monotone() {
    let threads: Vec<Vec<Step<EpochCore>>> = vec![
        vec![step(|c: &mut EpochCore| c.swap_locked(1))],
        vec![step(|c: &mut EpochCore| c.swap_locked(2))],
        vec![step(|c: &mut EpochCore| {
            c.route_locked(Frame { id: 3, epoch: 2 })
        })],
        vec![step(|c: &mut EpochCore| c.route_untagged(4))],
    ];
    let ok = explore(EpochCore::new, &threads, core_invariants, |c| {
        if c.epoch != 2 {
            return Err(format!("final epoch {} != 2", c.epoch));
        }
        c.delivered_exactly_once(3)?;
        c.delivered_exactly_once(4)
    })
    .expect("stacked swaps must converge to the newest epoch");
    assert_eq!(ok.schedules, 24);
}

/// Scenario 5: two threads each do `MirroredCounter::add(1)` — local
/// bump then global bump as separate steps, the real ordering. At every
/// intermediate point the global mirror may lag but never lead, and
/// once both settle it equals the sum of locals.
#[test]
fn mirrored_counter_never_overreports() {
    let threads: Vec<Vec<Step<Mirrored>>> = (0..2usize)
        .map(|i| {
            vec![
                step(move |m: &mut Mirrored| m.add_local(i)),
                step(move |m: &mut Mirrored| m.add_global()),
            ]
        })
        .collect();
    let ok = explore(
        || Mirrored::new(2),
        &threads,
        Mirrored::mirror_never_ahead,
        Mirrored::settled,
    )
    .expect("local-then-global ordering keeps the mirror honest");
    assert_eq!(ok.schedules, 6);
}

/// The same counter modelled with the WRONG ordering (global before
/// local) must be caught over-reporting — proving the invariant check
/// has teeth.
#[test]
fn reversed_counter_ordering_is_caught() {
    let threads: Vec<Vec<Step<Mirrored>>> = (0..2usize)
        .map(|i| {
            vec![
                step(move |m: &mut Mirrored| m.add_global()),
                step(move |m: &mut Mirrored| m.add_local(i)),
            ]
        })
        .collect();
    let err = explore(
        || Mirrored::new(2),
        &threads,
        Mirrored::mirror_never_ahead,
        Mirrored::settled,
    )
    .expect_err("global-first ordering must trip the mirror invariant");
    assert!(err.msg.contains("ahead"));
}

//! The steering process: the simulated XDP sharding offload.
//!
//! The paper's accelerated sharding implementation is a ~200-line XDP
//! program that rewrites packets *below* the application: requests to the
//! canonical address are redirected to a shard by hashing fixed payload
//! bytes, without deserialization and without terminating any connection.
//! We cannot load kernel XDP here, so this module substitutes a dedicated
//! steering task that owns the canonical socket and does exactly the same
//! per-datagram work (tag check, fixed-offset hash, forward), preserving
//! what Figure 5 measures: steering below the application vs. in it.
//!
//! Mechanics (a user-space NAT, like an XDP `bpf_redirect` plus rewrite):
//!
//! - the steerer binds the canonical address; the application server
//!   listens on an internal address instead;
//! - each client gets a flow socket; datagrams from the client are
//!   forwarded through it — handshake frames to the internal server,
//!   data frames to the shard chosen by the hash;
//! - replies arriving on the flow socket are relayed back to the client
//!   from the canonical address, so the client sees a single peer.
//!
//! Epoch-tagged data frames (from clients that re-negotiated
//! mid-connection) steer exactly like plain ones: `strip_data` skips the
//! epoch header, the hash reads the same fixed payload bytes, and the
//! frame is forwarded verbatim — the steerer stays stateless with respect
//! to the client's stack incarnation.
//!
//! The steerer is also the canonical offload-death case this repo's
//! failure model is built around: [`supervise_steerer`] watches a running
//! steerer, and when it dies withdraws its discovery registration, rebinds
//! the canonical address, and serves a *switchable software-only* server
//! there — so clients whose steered path went dark renegotiate (their
//! `Renegotiate` is the first message the reincarnated server sees) and
//! land on the in-app fallback without tearing down their connections.

use crate::info::ShardInfo;
use crate::server::ShardCanonicalServer;
use crate::worker::strip_data;
use crate::{IMPL_STEER, SHARD_CAPABILITY};
use bertha::conn::{ChunnelConnection, Datagram, Drain};
use bertha::negotiate::{
    Apply, Endpoints, EpochConn, GetOffers, NegotiateOpts, Scope, SwitchableStream, TAG_NEG,
};
use bertha::ChunnelListener;
use bertha::{Addr, ConnStream, Error};
use bertha_discovery::registry::{Hooks, Registration};
use bertha_discovery::resources::{ResourceKind, ResourceReq};
use bertha_telemetry as tele;
use bertha_transport::udp::UdpListener;
use bertha_transport::{bind_any, AnyConn};
use std::collections::HashMap;
use std::future::Future;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counters exposed by a running steerer, also mirrored into the global
/// telemetry registry (`shard.*` metrics).
pub struct SteerStats {
    /// Data frames steered to shards.
    pub steered: tele::MirroredCounter,
    /// Handshake frames forwarded to the application server.
    pub handshakes: tele::MirroredCounter,
    /// Frames dropped (no tag, unknown type).
    pub dropped: tele::MirroredCounter,
    /// Replies relayed back to clients.
    pub relayed: tele::MirroredCounter,
    /// Steered frames by destination shard index (this steerer only).
    per_shard: Vec<tele::Counter>,
}

impl SteerStats {
    fn new(shards: usize) -> Self {
        SteerStats {
            steered: tele::MirroredCounter::new("shard.steered"),
            handshakes: tele::MirroredCounter::new("shard.handshakes"),
            dropped: tele::MirroredCounter::new("shard.dropped"),
            relayed: tele::MirroredCounter::new("shard.relayed"),
            per_shard: (0..shards).map(|_| tele::Counter::new()).collect(),
        }
    }

    /// How many data frames were steered to each shard, by index.
    pub fn per_shard(&self) -> Vec<u64> {
        self.per_shard.iter().map(|c| c.get()).collect()
    }
}

/// A running steerer. Aborting (or dropping) the handle stops it.
pub struct SteererHandle {
    main: tokio::task::JoinHandle<()>,
    /// Closed when the steering task exits, however it exits.
    stopped: tokio::sync::watch::Receiver<bool>,
    /// Live counters.
    pub stats: Arc<SteerStats>,
    canonical: Addr,
}

impl SteererHandle {
    /// The canonical address the steerer owns.
    pub fn canonical(&self) -> &Addr {
        &self.canonical
    }

    /// Stop the steerer.
    pub fn stop(&self) {
        self.main.abort();
    }

    /// A detached kill switch for the steering task, usable after the
    /// handle itself has been given to [`supervise_steerer`] (tests and
    /// chaos harnesses use this to simulate the offload crashing).
    pub fn abort_handle(&self) -> tokio::task::AbortHandle {
        self.main.abort_handle()
    }

    /// Resolve once the steering task has exited — crashed, hit a socket
    /// error, or was [`stop`](Self::stop)ped. This is what a supervisor
    /// awaits to begin failover.
    pub async fn stopped(&self) {
        let mut rx = self.stopped.clone();
        // The sender lives inside the steering task; the channel closing is
        // the task exiting (including by abort, which sends nothing).
        while rx.changed().await.is_ok() {}
    }
}

impl Drop for SteererHandle {
    fn drop(&mut self) {
        self.main.abort();
    }
}

struct Flow {
    sock: Arc<AnyConn>,
    relay: tokio::task::JoinHandle<()>,
}

impl Drop for Flow {
    fn drop(&mut self) {
        self.relay.abort();
    }
}

/// Start a steerer owning `canonical`. Handshake frames go to
/// `internal_server`; data frames go to the shard selected by
/// `info.shard_fn` applied to the (tag-stripped) payload.
pub async fn run_steerer(
    canonical: Addr,
    internal_server: Addr,
    info: ShardInfo,
) -> Result<SteererHandle, Error> {
    let canonical_sock = Arc::new(match &canonical {
        Addr::Udp(_) => AnyConn::Udp(bertha_transport::udp::bind_udp(&canonical).await?),
        Addr::Mem(name) => {
            AnyConn::Mem(bertha_transport::mem::MemSocket::bind(Some(name.clone()))?)
        }
        other => {
            return Err(Error::Other(format!(
                "steerer cannot own a {} address",
                other.family()
            )))
        }
    });
    let bound = canonical_sock.local_addr()?;
    let stats = Arc::new(SteerStats::new(info.shards.len()));
    let (stopped_tx, stopped_rx) = tokio::sync::watch::channel(false);

    let main = {
        let stats = Arc::clone(&stats);
        let canonical_sock = Arc::clone(&canonical_sock);
        tokio::spawn(async move {
            // Held for the task's lifetime; dropping it (on return or
            // abort) closes the channel `SteererHandle::stopped` watches.
            let _stopped_tx = stopped_tx;
            let mut flows: HashMap<Addr, Flow> = HashMap::new();
            loop {
                let (from, frame) = match canonical_sock.recv().await {
                    Ok(d) => d,
                    Err(_) => return,
                };

                let dst = match frame.first() {
                    Some(&TAG_NEG) => {
                        stats.handshakes.incr();
                        internal_server.clone()
                    }
                    _ => match strip_data(&frame) {
                        Some(payload) => {
                            let shard = info.shard_of(payload);
                            stats.steered.incr();
                            if let Some(c) = stats.per_shard.get(shard) {
                                c.incr();
                            }
                            info.shards[shard].clone()
                        }
                        None => {
                            stats.dropped.incr();
                            continue;
                        }
                    },
                };

                let flow = match flows.get(&from) {
                    Some(f) => f,
                    None => {
                        let sock = match bind_any(&dst).await {
                            Ok(s) => Arc::new(s),
                            Err(_) => {
                                stats.dropped.incr();
                                continue;
                            }
                        };
                        // Reverse path: replies on the flow socket go back
                        // to this client from the canonical address.
                        let relay = {
                            let sock = Arc::clone(&sock);
                            let canonical_sock = Arc::clone(&canonical_sock);
                            let client = from.clone();
                            let stats = Arc::clone(&stats);
                            tokio::spawn(async move {
                                loop {
                                    let (_, reply) = match sock.recv().await {
                                        Ok(d) => d,
                                        Err(_) => return,
                                    };
                                    stats.relayed.incr();
                                    if canonical_sock.send((client.clone(), reply)).await.is_err() {
                                        return;
                                    }
                                }
                            })
                        };
                        flows.insert(from.clone(), Flow { sock, relay });
                        flows.get(&from).expect("just inserted")
                    }
                };
                let _ = flow.sock.send((dst, frame)).await;
            }
        })
    };

    Ok(SteererHandle {
        main,
        stopped: stopped_rx,
        stats,
        canonical: bound,
    })
}

/// The software-only canonical server a supervisor starts once the steerer
/// is gone. Dropping (or [`stop`](Self::stop)ping) it stops the accept
/// loop and releases the canonical address.
pub struct FallbackServer {
    /// The canonical address this server answers on.
    pub canonical: Addr,
    task: tokio::task::JoinHandle<()>,
}

impl FallbackServer {
    /// Stop accepting connections.
    pub fn stop(&self) {
        self.task.abort();
    }
}

impl Drop for FallbackServer {
    fn drop(&mut self) {
        self.task.abort();
    }
}

/// Accept and hold switchable connections until the stream ends: the
/// connections' background work (responder halves, fallback dispatch
/// pumps) lives exactly as long as the server.
fn hold_all<S, Stack, InC>(mut stream: SwitchableStream<S, Stack>) -> tokio::task::JoinHandle<()>
where
    S: ConnStream<Connection = InC> + Send + 'static,
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
    Stack: GetOffers + Apply<EpochConn<InC>> + Clone + Send + Sync + 'static,
    Stack::Applied: ChunnelConnection<Data = Datagram> + Drain + Send + Sync + 'static,
{
    tokio::spawn(async move {
        let mut held = Vec::new();
        while let Some(conn) = stream.next().await {
            match conn {
                Ok(c) => held.push(c),
                Err(_) => continue, // a failed negotiation is that client's problem
            }
        }
        drop(held);
    })
}

/// Bind `canonical` and serve a switchable, software-only canonical server
/// there: `shard/steer` is not offered (the steerer this replaces is
/// dead), so negotiation — initial offers and mid-connection
/// `Renegotiate`s alike — lands on client-push or the in-app fallback.
pub async fn serve_fallback(
    canonical: Addr,
    info: ShardInfo,
    opts: NegotiateOpts,
) -> Result<FallbackServer, Error> {
    tele::counter("shard.fallback_activations").incr();
    tele::event!(
        tele::Level::Warn,
        "shard",
        "fallback_activated",
        "canonical" = canonical.to_string(),
        "shards" = info.shards.len(),
    );
    let _ = tele::flight::dump("shard.fallback_activated", None);
    let stack = bertha::wrap!(ShardCanonicalServer::new(info).software_only());
    if matches!(canonical, Addr::Udp(_)) {
        let raw = UdpListener::default().listen(canonical).await?;
        let bound = raw.local_addr();
        Ok(FallbackServer {
            canonical: bound,
            task: hold_all(SwitchableStream::new(raw, stack, opts)),
        })
    } else if matches!(canonical, Addr::Mem(_)) {
        let raw = bertha_transport::MemListener
            .listen(canonical.clone())
            .await?;
        Ok(FallbackServer {
            canonical,
            task: hold_all(SwitchableStream::new(raw, stack, opts)),
        })
    } else {
        Err(Error::Other(format!(
            "fallback server cannot own a {} address",
            canonical.family()
        )))
    }
}

/// Supervise a running steerer: when it dies, run `revoke` (withdraw its
/// discovery registration, so re-filtered offers stop naming it), then
/// rebind the canonical address and serve a switchable software-only
/// server there via [`serve_fallback`]. Returns immediately; the returned
/// task resolves to the failover outcome once the steerer has died.
///
/// Rebinding races the OS releasing the steerer's socket, so it is
/// retried briefly; `revoke` failing (say, the discovery agent died with
/// the steerer) is logged into the error path of the *registry*, not
/// fatal here — the fallback server does not offer `shard/steer`
/// regardless.
pub fn supervise_steerer<F, Fut>(
    handle: SteererHandle,
    info: ShardInfo,
    opts: NegotiateOpts,
    revoke: F,
) -> tokio::task::JoinHandle<Result<FallbackServer, Error>>
where
    F: FnOnce() -> Fut + Send + 'static,
    Fut: Future<Output = Result<(), Error>> + Send,
{
    tokio::spawn(async move {
        handle.stopped().await;
        let canonical = handle.canonical().clone();
        // Ensure the steerer's socket is dropped before we rebind.
        drop(handle);
        let _ = revoke().await;
        let mut delay = Duration::from_millis(10);
        let mut last_err = None;
        for _ in 0..8 {
            match serve_fallback(canonical.clone(), info.clone(), opts.clone()).await {
                Ok(srv) => return Ok(srv),
                Err(e) => {
                    last_err = Some(e);
                    tokio::time::sleep(delay).await;
                    delay = delay.saturating_mul(2);
                }
            }
        }
        Err(last_err.expect("loop ran at least once"))
    })
}

/// The discovery registration for a steerer deployed on this host: the
/// operator registers it so negotiation starts offering `shard/steer`
/// (§4.2); the init hook counts per-connection activations.
pub fn steerer_registration(device: Option<String>) -> (Registration, Hooks, Arc<AtomicU64>) {
    let activations = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&activations);
    let hooks = Hooks::on_init(move |_pick| {
        counter.fetch_add(1, Ordering::Relaxed);
        Box::pin(async { Ok(()) })
    });
    (
        Registration {
            capability: SHARD_CAPABILITY,
            impl_guid: IMPL_STEER,
            name: "shard/steer".into(),
            endpoints: Endpoints::Server,
            scope: Scope::Host,
            priority: 10,
            resources: ResourceReq::of([(ResourceKind::HostCores, 1)]),
            device,
        },
        hooks,
        activations,
    )
}

/// Supervise a steerer's presence in a per-host discovery agent: hold
/// its registration under a lease, renew at `ttl / 3`, and re-register
/// from scratch whenever a renewal fails (the lease lapsed across an
/// agent restart, or the entry was revoked). Together with
/// [`RemoteRegistry`](bertha_discovery::RemoteRegistry)'s session
/// resumption this keeps the `shard/steer` offer alive across agent
/// crashes without the data plane noticing; aborting the returned task
/// stops the supervision (and lets the lease lapse, withdrawing the
/// offer).
pub fn keep_steerer_registered(
    remote: Arc<bertha_discovery::RemoteRegistry>,
    device: Option<String>,
    ttl: Duration,
) -> tokio::task::JoinHandle<()> {
    let (reg, _hooks, _activations) = steerer_registration(device);
    tokio::spawn(async move {
        let period = (ttl / 3).max(Duration::from_millis(1));
        loop {
            // (Re-)establish the lease; errors back off one renewal
            // period so a down agent is not hammered.
            loop {
                match remote.register_leased(reg.clone(), ttl).await {
                    Ok(()) => break,
                    Err(e) => {
                        tele::event!(
                            tele::Level::Warn,
                            "shard",
                            "steerer_register_failed",
                            "error" = e.to_string(),
                        );
                        tokio::time::sleep(period).await;
                    }
                }
            }
            tele::counter("shard.steer.lease_registrations").incr();
            // Renew until a renewal fails, then fall back to the
            // registration loop above.
            loop {
                tokio::time::sleep(period).await;
                if let Err(e) = remote.renew(reg.impl_guid, ttl).await {
                    tele::event!(
                        tele::Level::Warn,
                        "shard",
                        "steerer_renew_failed",
                        "error" = e.to_string(),
                    );
                    break;
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::ShardFnSpec;
    use crate::worker::{frame_data, serve_shard};
    use bertha::negotiate::TAG_DATA;
    use bertha::ChunnelConnector;
    use bertha_transport::udp::{bind_udp, UdpConnector};

    fn payload_with_key(key: u32, body: &[u8]) -> Vec<u8> {
        let mut p = vec![0u8; 14];
        p[10..14].copy_from_slice(&key.to_le_bytes());
        p.extend_from_slice(body);
        p
    }

    #[tokio::test]
    async fn steers_data_and_forwards_handshakes() {
        // Two shards tagging replies with their index.
        let (s0, t0, _) = serve_shard(Addr::Udp("127.0.0.1:0".parse().unwrap()), |p| async move {
            let mut r = p;
            r.push(0);
            Some(r)
        })
        .await
        .unwrap();
        let (s1, t1, _) = serve_shard(Addr::Udp("127.0.0.1:0".parse().unwrap()), |p| async move {
            let mut r = p;
            r.push(1);
            Some(r)
        })
        .await
        .unwrap();

        // An "internal server" that answers handshake frames verbatim.
        let internal = bind_udp(&Addr::Udp("127.0.0.1:0".parse().unwrap()))
            .await
            .unwrap();
        let internal_addr = internal.local_addr().unwrap();
        let internal_task = tokio::spawn(async move {
            loop {
                let (from, frame) = match internal.recv().await {
                    Ok(d) => d,
                    Err(_) => return,
                };
                let _ = internal.send((from, frame)).await;
            }
        });

        let info = ShardInfo {
            canonical: Addr::Udp("127.0.0.1:0".parse().unwrap()),
            shards: vec![s0.clone(), s1.clone()],
            shard_fn: ShardFnSpec::paper_default(),
        };
        let steerer = run_steerer(info.canonical.clone(), internal_addr, info.clone())
            .await
            .unwrap();
        let canonical = steerer.canonical().clone();

        let client = UdpConnector.connect(canonical.clone()).await.unwrap();

        // A handshake frame comes back verbatim (via the internal server).
        let hs = vec![TAG_NEG, 0xaa, 0xbb];
        client.send((canonical.clone(), hs.clone().into())).await.unwrap();
        let (from, echoed) = client.recv().await.unwrap();
        assert_eq!(echoed, hs);
        assert_eq!(
            from, canonical,
            "the client only ever talks to the canonical address"
        );

        // Data frames are steered by key and come back from the right shard.
        for key in 0..30u32 {
            let req = payload_with_key(key, b"r");
            let expect_shard = info.shard_of(&req) as u8;
            client
                .send((canonical.clone(), frame_data(&req).into()))
                .await
                .unwrap();
            let (_, reply_frame) = client.recv().await.unwrap();
            let reply = strip_data(&reply_frame).unwrap();
            assert_eq!(*reply.last().unwrap(), expect_shard);
        }

        assert_eq!(steerer.stats.handshakes.get(), 1);
        assert_eq!(steerer.stats.steered.get(), 30);
        assert_eq!(steerer.stats.relayed.get(), 31);
        let per_shard = steerer.stats.per_shard();
        assert_eq!(per_shard.len(), 2);
        assert_eq!(per_shard.iter().sum::<u64>(), 30);
        assert!(
            per_shard.iter().all(|&n| n > 0),
            "both shards must receive traffic: {per_shard:?}"
        );

        // Untagged garbage is dropped.
        client.send((canonical.clone(), vec![0x7f].into())).await.unwrap();
        tokio::time::sleep(std::time::Duration::from_millis(20)).await;
        assert_eq!(steerer.stats.dropped.get(), 1);

        t0.abort();
        t1.abort();
        internal_task.abort();
        let _ = TAG_DATA;
    }

    #[tokio::test]
    async fn supervisor_replaces_dead_steerer_with_software_fallback() {
        use crate::client::ShardDeferChunnel;
        use crate::IMPL_FALLBACK;
        use bertha::negotiate::negotiate_switchable_client;

        let (s0, t0, _) = serve_shard(Addr::Udp("127.0.0.1:0".parse().unwrap()), |p| async move {
            let mut r = p;
            r.push(b'!');
            Some(r)
        })
        .await
        .unwrap();

        // An internal server address for the steered phase; it never sees
        // traffic in this test (we only exercise the failover).
        let internal = bind_udp(&Addr::Udp("127.0.0.1:0".parse().unwrap()))
            .await
            .unwrap();
        let internal_addr = internal.local_addr().unwrap();

        let mut info = ShardInfo {
            canonical: Addr::Udp("127.0.0.1:0".parse().unwrap()),
            shards: vec![s0],
            shard_fn: ShardFnSpec::paper_default(),
        };
        let steerer = run_steerer(info.canonical.clone(), internal_addr, info.clone())
            .await
            .unwrap();
        info.canonical = steerer.canonical().clone();
        let kill = steerer.abort_handle();

        let revoked = Arc::new(AtomicU64::new(0));
        let revoked2 = Arc::clone(&revoked);
        let supervisor = supervise_steerer(
            steerer,
            info.clone(),
            bertha::negotiate::NegotiateOpts::named("supervisor"),
            move || async move {
                revoked2.fetch_add(1, Ordering::Relaxed);
                Ok(())
            },
        );

        // The offload "crashes".
        kill.abort();
        let fallback = tokio::time::timeout(std::time::Duration::from_secs(5), supervisor)
            .await
            .expect("failover must not hang")
            .unwrap()
            .unwrap();
        assert_eq!(revoked.load(Ordering::Relaxed), 1, "registration revoked");
        assert_eq!(
            fallback.canonical, info.canonical,
            "the canonical address was rebound"
        );

        // A negotiation on the rebound address lands on the software
        // fallback (steer is withdrawn), and requests round-trip through
        // the in-app dispatcher.
        let raw = UdpConnector
            .connect(fallback.canonical.clone())
            .await
            .unwrap();
        let (conn, picks) = negotiate_switchable_client(
            bertha::wrap!(ShardDeferChunnel),
            raw,
            fallback.canonical.clone(),
            bertha::negotiate::NegotiateOpts::named("cli"),
        )
        .await
        .unwrap();
        assert_eq!(picks.picks.len(), 1);
        assert_eq!(picks.picks[0].impl_guid, IMPL_FALLBACK);

        let req = payload_with_key(3, b"req");
        conn.send((fallback.canonical.clone(), req.clone().into()))
            .await
            .unwrap();
        let (_, reply) = tokio::time::timeout(std::time::Duration::from_secs(5), conn.recv())
            .await
            .expect("fallback dispatch must answer")
            .unwrap();
        assert_eq!(reply[..req.len()], req[..]);
        assert_eq!(*reply.last().unwrap(), b'!');
        t0.abort();
    }

    #[test]
    fn registration_shape() {
        let (reg, _hooks, _count) = steerer_registration(Some("host0".into()));
        assert_eq!(reg.capability, SHARD_CAPABILITY);
        assert_eq!(reg.impl_guid, IMPL_STEER);
        assert_eq!(reg.endpoints, Endpoints::Server);
        assert_eq!(reg.scope, Scope::Host);
        assert!(reg.priority > 0);
    }

    #[tokio::test]
    async fn steerer_supervision_survives_agent_restart() {
        use bertha_discovery::registry::RegistrySource;
        let dir = std::env::temp_dir().join(format!("bertha-steer-sup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut agent =
            bertha_discovery::AgentHarness::new(dir.join("state"), dir.join("agent.sock"));
        agent.start().await.unwrap();

        let remote = Arc::new(bertha_discovery::RemoteRegistry::new(
            agent.socket().to_path_buf(),
        ));
        let ttl = Duration::from_millis(150);
        let sup = keep_steerer_registered(Arc::clone(&remote), None, ttl);

        let registered = |remote: Arc<bertha_discovery::RemoteRegistry>| async move {
            for _ in 0..100 {
                if let Ok(true) = RegistrySource::registered(&*remote, IMPL_STEER).await {
                    return true;
                }
                tokio::time::sleep(Duration::from_millis(20)).await;
            }
            false
        };
        assert!(
            registered(Arc::clone(&remote)).await,
            "steerer never registered"
        );

        // Crash the agent mid-supervision and bring it back on the same
        // state dir: renewals fail during the outage, then supervision
        // (plus the client's session resumption) re-establishes the
        // lease without any new RemoteRegistry or steerer task.
        agent.crash();
        tokio::time::sleep(2 * ttl).await;
        agent.start().await.unwrap();
        assert!(
            registered(Arc::clone(&remote)).await,
            "steerer registration not re-established after agent restart"
        );
        sup.abort();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

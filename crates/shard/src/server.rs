//! The canonical-address server chunnel (Listing 4).
//!
//! `ShardCanonicalServer` is what the sharded service wraps its listener
//! with. Its negotiation slot offers all three sharding implementations;
//! what it instantiates per connection depends on the pick:
//!
//! - `shard/steer` or `shard/client-push`: nothing — traffic reaches the
//!   shards below or beside this connection, and the canonical connection
//!   only carries the handshake;
//! - `shard/fallback`: the connection's requests are funneled through the
//!   server's single in-application dispatcher, which forwards each request
//!   to its shard and relays the reply. One dispatcher serves every
//!   fallback connection, one request at a time: this is deliberately the
//!   bottleneck Figure 5's "Server Fallback" arm measures ("the need to
//!   handle traffic from all clients results in poor performance, but
//!   still provides correctness").

use crate::info::ShardInfo;
use crate::worker::strip_data;
use bertha::negotiate::TAG_DATA;
use crate::{IMPL_CLIENT_PUSH, IMPL_FALLBACK, IMPL_STEER, SHARD_CAPABILITY};
use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain};
use bertha::negotiate::{Endpoints, NegotiateSlot, Offer, Scope, SlotApply};
use bertha::{Addr, Error};
use bertha_transport::bind_any;
use parking_lot::Mutex;
use std::sync::Arc;
use tokio::sync::mpsc;

/// See the module docs.
#[derive(Clone)]
pub struct ShardCanonicalServer {
    info: ShardInfo,
    dispatcher: Arc<Mutex<Option<mpsc::Sender<DispatchMsg>>>>,
    offer_steer: bool,
}

struct DispatchMsg {
    payload: bertha::buf::Frame,
    reply_to: Addr,
    reply_via: Arc<dyn ChunnelConnection<Data = Datagram> + Send + Sync>,
}

impl ShardCanonicalServer {
    /// A canonical server for the given shard map (Listing 4's
    /// `shard(shard::args(choices: shards), fn: shard_fn)`).
    pub fn new(info: ShardInfo) -> Self {
        ShardCanonicalServer {
            info,
            dispatcher: Arc::new(Mutex::new(None)),
            offer_steer: true,
        }
    }

    /// Stop offering `shard/steer`: used by the server incarnation that
    /// replaces a dead steerer, where offering the accelerated
    /// implementation again would steer clients back onto the corpse.
    /// (Deployments with a discovery agent get the same effect from the
    /// negotiation filter once the steerer's registration is revoked; this
    /// covers deployments without one.)
    pub fn software_only(mut self) -> Self {
        self.offer_steer = false;
        self
    }

    /// The shard map this server advertises.
    pub fn info(&self) -> &ShardInfo {
        &self.info
    }

    /// Get (starting if necessary) the shared fallback dispatcher.
    fn dispatcher(&self) -> mpsc::Sender<DispatchMsg> {
        let mut guard = self.dispatcher.lock();
        if let Some(tx) = guard.as_ref() {
            if !tx.is_closed() {
                return tx.clone();
            }
        }
        let (tx, rx) = mpsc::channel(1024);
        tokio::spawn(run_dispatcher(self.info.clone(), rx));
        *guard = Some(tx.clone());
        tx
    }
}

/// The single-threaded fallback dispatcher: one request in flight at a
/// time, across all fallback connections.
async fn run_dispatcher(info: ShardInfo, mut rx: mpsc::Receiver<DispatchMsg>) {
    let out = match bind_any(&info.shards[0]).await {
        Ok(s) => s,
        Err(_) => return,
    };
    while let Some(msg) = rx.recv().await {
        let shard = info.shard_addr(&msg.payload).clone();
        // Tag in place: the request frame came off the wire with headroom.
        let mut req = msg.payload;
        req.prepend(&[TAG_DATA]);
        if out.send((shard, req)).await.is_err() {
            continue;
        }
        // Serial request/reply: the fallback's defining inefficiency.
        let reply = match tokio::time::timeout(std::time::Duration::from_secs(5), out.recv()).await
        {
            Ok(Ok((_, mut frame))) => {
                let Some(off) = strip_data(&frame).map(|r| frame.len() - r.len()) else {
                    continue;
                };
                frame.strip(off);
                frame
            }
            _ => continue, // lost request: client-level retry's problem
        };
        let _ = msg.reply_via.send((msg.reply_to, reply)).await;
    }
}

impl NegotiateSlot for ShardCanonicalServer {
    fn slot_offers(&self) -> Vec<Offer> {
        let ext = self.info.to_ext();
        let mut offers = Vec::with_capacity(3);
        if self.offer_steer {
            offers.push(Offer {
                capability: SHARD_CAPABILITY,
                impl_guid: IMPL_STEER,
                name: "shard/steer".into(),
                endpoints: Endpoints::Server,
                scope: Scope::Host,
                priority: 10,
                ext: ext.clone(),
            });
        }
        offers.extend([
            Offer {
                capability: SHARD_CAPABILITY,
                impl_guid: IMPL_CLIENT_PUSH,
                name: "shard/client-push".into(),
                endpoints: Endpoints::Client,
                scope: Scope::Application,
                priority: 1,
                ext: ext.clone(),
            },
            Offer {
                capability: SHARD_CAPABILITY,
                impl_guid: IMPL_FALLBACK,
                name: "shard/fallback".into(),
                endpoints: Endpoints::Server,
                scope: Scope::Application,
                priority: 0,
                ext,
            },
        ]);
        offers
    }
}

impl<InC> SlotApply<InC> for ShardCanonicalServer
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Applied = ShardServerConn<InC>;

    fn slot_apply(
        &self,
        pick: Offer,
        _nonce: Vec<u8>,
        inner: InC,
    ) -> BoxFut<'static, Result<Self::Applied, Error>> {
        if pick.capability != SHARD_CAPABILITY {
            let msg = format!("pick {} does not match shard slot", pick.name);
            return Box::pin(async move { Err(Error::Negotiation(msg)) });
        }
        let this = self.clone();
        Box::pin(async move {
            match pick.impl_guid {
                g if g == IMPL_STEER || g == IMPL_CLIENT_PUSH => Ok(ShardServerConn {
                    inner: Arc::new(inner),
                    dispatched: false,
                }),
                g if g == IMPL_FALLBACK => {
                    let inner = Arc::new(inner);
                    let tx = this.dispatcher();
                    // Pump this connection's requests into the shared
                    // dispatcher.
                    let pump_conn = Arc::clone(&inner);
                    tokio::spawn(async move {
                        loop {
                            let (from, payload) = match pump_conn.recv().await {
                                Ok(d) => d,
                                Err(_) => return,
                            };
                            let msg = DispatchMsg {
                                payload,
                                reply_to: from,
                                reply_via: Arc::clone(&pump_conn)
                                    as Arc<dyn ChunnelConnection<Data = Datagram> + Send + Sync>,
                            };
                            if tx.send(msg).await.is_err() {
                                return;
                            }
                        }
                    });
                    Ok(ShardServerConn {
                        inner,
                        dispatched: true,
                    })
                }
                _ => Err(Error::Negotiation(format!(
                    "unknown shard implementation {:#x}",
                    pick.impl_guid
                ))),
            }
        })
    }
}

/// Connection produced by [`ShardCanonicalServer`]. In dispatched
/// (fallback) mode, requests are consumed by the dispatcher and `recv`
/// never resolves — the shards answer clients, not this connection.
pub struct ShardServerConn<C> {
    inner: Arc<C>,
    dispatched: bool,
}

impl<C> ShardServerConn<C> {
    /// Whether this connection's traffic is being dispatched in-app.
    pub fn is_dispatched(&self) -> bool {
        self.dispatched
    }
}

impl<C> ChunnelConnection for ShardServerConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Data = Datagram;

    fn send(&self, d: Datagram) -> BoxFut<'_, Result<(), Error>> {
        self.inner.send(d)
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        if self.dispatched {
            // The dispatcher pump owns this connection's receive side.
            Box::pin(std::future::pending())
        } else {
            self.inner.recv()
        }
    }
}

/// The shard layer buffers nothing of its own on the send path (the
/// fallback dispatcher replies synchronously through `reply_via`), so
/// quiescing is entirely the inner layer's concern.
impl<C> Drain for ShardServerConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Drain + Send + Sync + 'static,
{
    fn drain(&self) -> BoxFut<'_, Result<(), Error>> {
        self.inner.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::ShardFnSpec;
    use crate::worker::serve_shard;
    use bertha::conn::pair;

    fn payload_with_key(key: u32, body: &[u8]) -> Vec<u8> {
        let mut p = vec![0u8; 14];
        p[10..14].copy_from_slice(&key.to_le_bytes());
        p.extend_from_slice(body);
        p
    }

    #[test]
    fn offers_all_three_impls_with_shard_map() {
        let info = ShardInfo {
            canonical: Addr::Mem("svc".into()),
            shards: vec![Addr::Mem("s0".into())],
            shard_fn: ShardFnSpec::paper_default(),
        };
        let srv = ShardCanonicalServer::new(info.clone());
        let offers = srv.slot_offers();
        assert_eq!(offers.len(), 3);
        for o in &offers {
            assert_eq!(ShardInfo::from_ext(&o.ext).unwrap(), info);
        }
        // Steer is the highest priority (it is the accelerated variant).
        let steer = offers.iter().find(|o| o.impl_guid == IMPL_STEER).unwrap();
        assert!(offers.iter().all(|o| o.priority <= steer.priority));

        // The post-steerer incarnation withdraws the accelerated offer.
        let sw = ShardCanonicalServer::new(info).software_only();
        let offers = sw.slot_offers();
        assert_eq!(offers.len(), 2);
        assert!(offers.iter().all(|o| o.impl_guid != IMPL_STEER));
    }

    #[tokio::test]
    async fn fallback_dispatches_to_shards_and_relays() {
        // Two real UDP echo shards.
        let (s0, t0, _) = serve_shard(Addr::Udp("127.0.0.1:0".parse().unwrap()), |p| async move {
            let mut r = p;
            r.push(b'0');
            Some(r)
        })
        .await
        .unwrap();
        let (s1, t1, _) = serve_shard(Addr::Udp("127.0.0.1:0".parse().unwrap()), |p| async move {
            let mut r = p;
            r.push(b'1');
            Some(r)
        })
        .await
        .unwrap();

        let info = ShardInfo {
            canonical: Addr::Mem("svc".into()),
            shards: vec![s0, s1],
            shard_fn: ShardFnSpec::paper_default(),
        };
        let srv = ShardCanonicalServer::new(info.clone());
        let offers = srv.slot_offers();
        let pick = offers
            .iter()
            .find(|o| o.impl_guid == IMPL_FALLBACK)
            .unwrap()
            .clone();

        // `client` plays the role of the negotiated canonical connection.
        let (server_side, client) = pair::<Datagram>(64);
        let conn = srv.slot_apply(pick, vec![], server_side).await.unwrap();
        assert!(conn.is_dispatched());

        let client_addr = Addr::Mem("client-1".into());
        for key in 0..20u32 {
            let req = payload_with_key(key, b"req");
            let expected_suffix = if info.shard_of(&req) == 0 { b'0' } else { b'1' };
            client
                .send((client_addr.clone(), req.clone().into()))
                .await
                .unwrap();
            let (to, reply) = client.recv().await.unwrap();
            assert_eq!(to, client_addr, "reply relayed to the requester");
            assert_eq!(reply[..req.len()], req[..]);
            assert_eq!(*reply.last().unwrap(), expected_suffix, "right shard");
        }
        t0.abort();
        t1.abort();
    }

    #[tokio::test]
    async fn steer_and_client_push_are_passthrough() {
        let info = ShardInfo {
            canonical: Addr::Mem("svc".into()),
            shards: vec![Addr::Mem("s0".into())],
            shard_fn: ShardFnSpec::paper_default(),
        };
        let srv = ShardCanonicalServer::new(info);
        for impl_guid in [IMPL_STEER, IMPL_CLIENT_PUSH] {
            let pick = srv
                .slot_offers()
                .into_iter()
                .find(|o| o.impl_guid == impl_guid)
                .unwrap();
            let (a, b) = pair::<Datagram>(4);
            let conn = srv.slot_apply(pick, vec![], a).await.unwrap();
            assert!(!conn.is_dispatched());
            b.send((Addr::Mem("x".into()), vec![1].into())).await.unwrap();
            let (_, d) = conn.recv().await.unwrap();
            assert_eq!(d, vec![1]);
        }
    }
}

//! Shard worker helpers.
//!
//! A shard worker is a plain datagram server: it receives a request, runs
//! the application handler, and replies to the datagram's source — which is
//! the client directly (client push), a steerer flow socket (steered), or
//! the in-app dispatcher (fallback). The worker neither knows nor cares
//! which; that symmetry is what lets negotiation switch steering modes
//! per connection (§5: "differences in client configuration result in
//! different implementations being picked by different connections").
//!
//! Requests and replies travel in established-connection framing (the
//! negotiation layer's one-byte data tag), so clients' negotiated
//! connections accept shard replies as ordinary traffic. Clients that have
//! re-negotiated mid-connection tag their data with an epoch
//! ([`TAG_DATA_EPOCH`]); workers accept those frames too, and reply with
//! the plain data tag — which re-negotiable connections accept at any
//! epoch, precisely because shard workers are stateless with respect to
//! the client's stack.

use bertha::conn::ChunnelConnection;
use bertha::negotiate::{TAG_DATA, TAG_DATA_EPOCH};
use bertha::{Addr, Error};
use bertha_transport::udp::bind_udp;
use std::future::Future;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Add the data tag to an application payload (wire form).
pub fn frame_data(payload: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(1 + payload.len());
    f.push(TAG_DATA);
    f.extend_from_slice(payload);
    f
}

/// Strip established-connection framing, if present, from a wire frame:
/// either the plain data tag or an epoch-tagged frame
/// (`[tag][epoch: u64 LE][payload]`) from a client that has re-negotiated.
/// The epoch is irrelevant to a shard worker — it names the client's stack
/// incarnation, not anything about the request — so it is discarded.
pub fn strip_data(frame: &[u8]) -> Option<&[u8]> {
    match frame.split_first() {
        Some((&TAG_DATA, body)) => Some(body),
        Some((&TAG_DATA_EPOCH, rest)) if rest.len() >= 8 => Some(&rest[8..]),
        _ => None,
    }
}

/// Statistics exposed by a running shard worker.
#[derive(Default)]
pub struct ShardStats {
    /// Requests processed.
    pub handled: AtomicU64,
    /// Frames dropped as malformed (wrong tag, handler error).
    pub dropped: AtomicU64,
}

/// Serve a shard on a UDP address: `handler` maps request payloads to reply
/// payloads. Returns the bound address (useful when `addr` had port 0), the
/// task handle, and a stats handle; aborting the task stops the worker.
pub async fn serve_shard<H, F>(
    addr: Addr,
    handler: H,
) -> Result<(Addr, tokio::task::JoinHandle<()>, Arc<ShardStats>), Error>
where
    H: Fn(Vec<u8>) -> F + Send + Sync + 'static,
    F: Future<Output = Option<Vec<u8>>> + Send,
{
    let sock = bind_udp(&addr).await?;
    let bound = sock.local_addr()?;
    let stats = Arc::new(ShardStats::default());
    let stats2 = Arc::clone(&stats);
    let task = tokio::spawn(async move {
        loop {
            let (from, frame) = match sock.recv().await {
                Ok(d) => d,
                Err(_) => return,
            };
            let Some(payload) = strip_data(&frame) else {
                stats2.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            match handler(payload.to_vec()).await {
                Some(reply) => {
                    stats2.handled.fetch_add(1, Ordering::Relaxed);
                    let mut f: bertha::buf::Frame = reply.into();
                    f.prepend(&[TAG_DATA]);
                    let _ = sock.send((from, f)).await;
                }
                None => {
                    stats2.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    });
    Ok((bound, task, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha::ChunnelConnector;
    use bertha_transport::udp::UdpConnector;

    #[tokio::test]
    async fn worker_round_trip_with_framing() {
        let (addr, task, stats) = serve_shard(
            Addr::Udp("127.0.0.1:0".parse().unwrap()),
            |req| async move {
                let mut r = req;
                r.reverse();
                Some(r)
            },
        )
        .await
        .unwrap();

        let client = UdpConnector.connect(addr.clone()).await.unwrap();
        client
            .send((addr.clone(), frame_data(b"abc").into()))
            .await
            .unwrap();
        let (_, frame) = client.recv().await.unwrap();
        assert_eq!(strip_data(&frame).unwrap(), b"cba");

        // Untagged garbage is counted and dropped, not crashed on.
        client.send((addr, b"no tag".into())).await.unwrap();
        tokio::time::sleep(std::time::Duration::from_millis(20)).await;
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 1);
        assert_eq!(stats.handled.load(Ordering::Relaxed), 1);
        task.abort();
    }

    #[test]
    fn framing_round_trip() {
        let f = frame_data(b"payload");
        assert_eq!(strip_data(&f).unwrap(), b"payload");
        assert!(strip_data(&[0x01, 2, 3]).is_none());
        assert!(strip_data(&[]).is_none());
    }

    #[test]
    fn epoch_tagged_frames_are_stripped_too() {
        let mut f = vec![TAG_DATA_EPOCH];
        f.extend_from_slice(&7u64.to_le_bytes());
        f.extend_from_slice(b"payload");
        assert_eq!(strip_data(&f).unwrap(), b"payload");
        // A truncated epoch header is malformed, not an empty payload.
        assert!(strip_data(&[TAG_DATA_EPOCH, 0, 0, 0]).is_none());
    }
}

//! The shard map and sharding function specification.

use bertha::Addr;
use serde::{Deserialize, Serialize};

/// A declarative sharding function: hash `len` payload bytes starting at
/// `offset`, modulo the shard count. Declarative (rather than a closure) so
/// it can cross the wire in a negotiation `ext` payload and be evaluated by
/// a steering element that never deserializes the request — the property
/// that makes XDP/switch offload possible (§3.2: "The use of
/// datagram-based transport allows offloads to avoid terminating
/// connections").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardFnSpec {
    /// Byte offset of the key field in the application payload.
    pub offset: usize,
    /// Length of the key field.
    pub len: usize,
}

impl ShardFnSpec {
    /// The paper's example: `hash(p.payload[10..14])` (Listing 4).
    pub fn paper_default() -> Self {
        ShardFnSpec { offset: 10, len: 4 }
    }

    /// Hash the key field of `payload`. Payloads too short to contain the
    /// field map to shard 0 (they are malformed anyway; a fixed assignment
    /// keeps the steerer total).
    pub fn hash_payload(&self, payload: &[u8]) -> u64 {
        if payload.len() < self.offset + self.len {
            return 0;
        }
        fnv1a(&payload[self.offset..self.offset + self.len])
    }
}

/// FNV-1a, the steerer's hash (cheap enough for a per-packet path).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything a participant needs to route requests: the canonical address,
/// the shard addresses, and the sharding function. Carried in the
/// negotiation `ext` payload (bincode) so clients learn it at
/// connection-establishment time — which is what makes resharding a
/// server-side change only.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardInfo {
    /// The canonical address clients connect to.
    pub canonical: Addr,
    /// Backend shard addresses.
    pub shards: Vec<Addr>,
    /// How to map a payload to a shard.
    pub shard_fn: ShardFnSpec,
}

impl ShardInfo {
    /// Which shard index handles `payload`.
    pub fn shard_of(&self, payload: &[u8]) -> usize {
        if self.shards.is_empty() {
            return 0;
        }
        (self.shard_fn.hash_payload(payload) % self.shards.len() as u64) as usize
    }

    /// The shard address for `payload`.
    pub fn shard_addr(&self, payload: &[u8]) -> &Addr {
        &self.shards[self.shard_of(payload)]
    }

    /// Serialize for a negotiation `ext` payload.
    pub fn to_ext(&self) -> Vec<u8> {
        bincode::serialize(self).expect("ShardInfo is serializable")
    }

    /// Parse from a negotiation `ext` payload.
    pub fn from_ext(ext: &[u8]) -> Result<Self, bertha::Error> {
        Ok(bincode::deserialize(ext)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(n: usize) -> ShardInfo {
        ShardInfo {
            canonical: Addr::Mem("canonical".into()),
            shards: (0..n).map(|i| Addr::Mem(format!("shard-{i}"))).collect(),
            shard_fn: ShardFnSpec::paper_default(),
        }
    }

    fn payload_with_key(key: u32) -> Vec<u8> {
        let mut p = vec![0u8; 14];
        p[10..14].copy_from_slice(&key.to_le_bytes());
        p
    }

    #[test]
    fn same_key_same_shard() {
        let info = info(3);
        for key in 0..100u32 {
            let a = info.shard_of(&payload_with_key(key));
            let b = info.shard_of(&payload_with_key(key));
            assert_eq!(a, b);
            assert!(a < 3);
        }
    }

    #[test]
    fn keys_spread_across_shards() {
        let info = info(3);
        let mut counts = [0usize; 3];
        for key in 0..3000u32 {
            counts[info.shard_of(&payload_with_key(key))] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > 600,
                "shard {i} got {c} of 3000 — distribution badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn short_payload_maps_to_zero() {
        let info = info(3);
        assert_eq!(info.shard_of(b"tiny"), 0);
    }

    #[test]
    fn ext_round_trip() {
        let i = info(4);
        let ext = i.to_ext();
        assert_eq!(ShardInfo::from_ext(&ext).unwrap(), i);
        assert!(ShardInfo::from_ext(&[1, 2, 3]).is_err());
    }

    #[test]
    fn empty_shard_list_is_total() {
        let mut i = info(0);
        i.shards.clear();
        assert_eq!(i.shard_of(&payload_with_key(7)), 0);
    }

    proptest::proptest! {
        #[test]
        fn shard_of_is_always_in_range(payload in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..64), n in 1usize..16) {
            let i = ShardInfo {
                canonical: Addr::Mem("c".into()),
                shards: (0..n).map(|k| Addr::Mem(format!("s{k}"))).collect(),
                shard_fn: ShardFnSpec::paper_default(),
            };
            proptest::prop_assert!(i.shard_of(&payload) < n);
        }
    }
}

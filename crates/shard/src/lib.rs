//! Sharding subsystem (Listings 4–5, §3.2, Figure 5).
//!
//! A sharded service exposes one canonical address; requests are routed to
//! one of several backend shards by hashing fixed payload bytes (Listing
//! 4's `shard_fn = |p| hash(p.payload[10..14]) % 3`). Three implementations
//! of the `bertha/shard` capability compete at negotiation time:
//!
//! - **client push** (`shard/client-push`, runs at the client): the client
//!   learns the shard map from the pick's `ext` payload and sends each
//!   request straight to its shard — scalable, no server bottleneck, but
//!   complicates resharding;
//! - **server steer** (`shard/steer`, runs on the server host): a steering
//!   process owns the canonical address and redirects each datagram to its
//!   shard *without deserializing* — it looks only at fixed payload bytes,
//!   like the paper's 200-line XDP program. This is the simulated-XDP
//!   substitution documented in DESIGN.md;
//! - **in-app fallback** (`shard/fallback`, runs in the server): a single
//!   application-level dispatcher forwards requests and relays replies —
//!   correct but slow, exactly Figure 5's "Server Fallback" arm.
//!
//! The fallback is also the failure-model safety net: when a running
//! steerer dies, [`steer::supervise_steerer`] withdraws its discovery
//! registration, rebinds the canonical address, and serves a switchable
//! software-only server there, so established connections re-negotiate
//! onto `shard/fallback` instead of dying with the offload.
//!
//! Modules: [`info`] (the shard map and hash spec), [`client`] (client-side
//! chunnels), [`server`] (the canonical-server chunnel), [`steer`] (the
//! steering process), [`worker`] (shard worker loop helpers).

#![warn(missing_docs)]

pub mod client;
pub mod info;
pub mod server;
pub mod steer;
pub mod worker;

pub use client::{ShardClientChunnel, ShardDeferChunnel};
pub use info::{ShardFnSpec, ShardInfo};
pub use server::ShardCanonicalServer;
pub use steer::{
    keep_steerer_registered, run_steerer, serve_fallback, steerer_registration,
    supervise_steerer, FallbackServer, SteererHandle,
};
pub use worker::serve_shard;

/// Capability GUID for sharding.
pub const SHARD_CAPABILITY: u64 = bertha::negotiate::guid("bertha/shard");
/// Implementation GUID: client-push sharding.
pub const IMPL_CLIENT_PUSH: u64 = bertha::negotiate::guid("bertha/shard/client-push");
/// Implementation GUID: steering on the server host (simulated XDP).
pub const IMPL_STEER: u64 = bertha::negotiate::guid("bertha/shard/steer");
/// Implementation GUID: in-application server fallback.
pub const IMPL_FALLBACK: u64 = bertha::negotiate::guid("bertha/shard/fallback");

//! Client-side sharding chunnels.
//!
//! [`ShardClientChunnel`] implements client-push sharding: once negotiation
//! picks it, the client reads the shard map from the pick's `ext` payload
//! and sends each request directly to its shard. [`ShardDeferChunnel`] is
//! the client-side counterpart for server-hosted implementations (steer or
//! in-app fallback): it offers those implementations on the client's behalf
//! and instantiates nothing — the client keeps sending to the canonical
//! address. A client that supports both modes uses
//! `Select::new(ShardClientChunnel::default(), ShardDeferChunnel::default())`.

use crate::info::ShardInfo;
use crate::{IMPL_CLIENT_PUSH, IMPL_FALLBACK, IMPL_STEER, SHARD_CAPABILITY};
use bertha::conn::{BoxFut, ChunnelConnection, Datagram};
use bertha::negotiate::{Endpoints, Negotiate, NegotiateSlot, Offer, Scope, SlotApply};
use bertha::{Chunnel, Error};

/// Client-push sharding (Figure 5's "Client Push" arm).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardClientChunnel;

impl Negotiate for ShardClientChunnel {
    const CAPABILITY: u64 = SHARD_CAPABILITY;
    const IMPL: u64 = IMPL_CLIENT_PUSH;
    const NAME: &'static str = "shard/client-push";
    const ENDPOINTS: Endpoints = Endpoints::Client;
    const SCOPE: Scope = Scope::Application;

    fn priority(&self) -> i32 {
        1
    }
}

impl NegotiateSlot for ShardClientChunnel {
    fn slot_offers(&self) -> Vec<Offer> {
        vec![Offer::from_chunnel(self)]
    }
}

// Hand-written (not via `negotiable!`): the connection is configured from
// the pick's `ext` payload, which only `slot_apply` sees.
impl<InC> SlotApply<InC> for ShardClientChunnel
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Applied = ShardClientConn<InC>;

    fn slot_apply(
        &self,
        pick: Offer,
        _nonce: Vec<u8>,
        inner: InC,
    ) -> BoxFut<'static, Result<Self::Applied, Error>> {
        Box::pin(async move {
            if pick.capability != SHARD_CAPABILITY {
                return Err(Error::Negotiation(format!(
                    "pick {} does not match shard slot",
                    pick.name
                )));
            }
            let info = ShardInfo::from_ext(&pick.ext).map_err(|e| {
                Error::Negotiation(format!("client-push pick carried no usable shard map: {e}"))
            })?;
            Ok(ShardClientConn { inner, info })
        })
    }
}

// Chunnel impl for direct (non-negotiated) composition in tests and tools;
// panics without a shard map, so negotiation is the expected path.
impl<InC> Chunnel<InC> for ShardClientChunnel
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Connection = ShardClientConn<InC>;

    fn connect_wrap(&self, _inner: InC) -> BoxFut<'static, Result<Self::Connection, Error>> {
        Box::pin(async move {
            Err(Error::Other(
                "ShardClientChunnel requires negotiation (the shard map arrives in the pick)"
                    .into(),
            ))
        })
    }
}

/// Connection produced by [`ShardClientChunnel`]: requests to the canonical
/// address are redirected to their shard.
pub struct ShardClientConn<C> {
    inner: C,
    info: ShardInfo,
}

impl<C> ShardClientConn<C> {
    /// The shard map in use.
    pub fn shard_info(&self) -> &ShardInfo {
        &self.info
    }
}

impl<C> ChunnelConnection for ShardClientConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync,
{
    type Data = Datagram;

    fn send(&self, (addr, payload): Datagram) -> BoxFut<'_, Result<(), Error>> {
        let addr = if addr == self.info.canonical {
            self.info.shard_addr(&payload).clone()
        } else {
            addr
        };
        self.inner.send((addr, payload))
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            let (from, payload) = self.inner.recv().await?;
            // Replies from any shard are, logically, from the service.
            let from = if self.info.shards.contains(&from) {
                self.info.canonical.clone()
            } else {
                from
            };
            Ok((from, payload))
        })
    }
}

/// Client-side stand-in for server-hosted sharding implementations: offers
/// `shard/steer` and `shard/fallback` (both `Endpoints::Server`) and wraps
/// nothing when picked.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardDeferChunnel;

impl NegotiateSlot for ShardDeferChunnel {
    fn slot_offers(&self) -> Vec<Offer> {
        vec![
            Offer {
                capability: SHARD_CAPABILITY,
                impl_guid: IMPL_STEER,
                name: "shard/steer".into(),
                endpoints: Endpoints::Server,
                scope: Scope::Host,
                priority: 10,
                ext: vec![],
            },
            Offer {
                capability: SHARD_CAPABILITY,
                impl_guid: IMPL_FALLBACK,
                name: "shard/fallback".into(),
                endpoints: Endpoints::Server,
                scope: Scope::Application,
                priority: 0,
                ext: vec![],
            },
        ]
    }
}

impl<InC> SlotApply<InC> for ShardDeferChunnel
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Applied = InC;

    fn slot_apply(
        &self,
        pick: Offer,
        _nonce: Vec<u8>,
        inner: InC,
    ) -> BoxFut<'static, Result<Self::Applied, Error>> {
        Box::pin(async move {
            if pick.capability != SHARD_CAPABILITY {
                return Err(Error::Negotiation(format!(
                    "pick {} does not match shard slot",
                    pick.name
                )));
            }
            Ok(inner)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::ShardFnSpec;
    use bertha::conn::pair;
    use bertha::Addr;

    fn shard_info() -> ShardInfo {
        ShardInfo {
            canonical: Addr::Mem("svc".into()),
            shards: vec![Addr::Mem("s0".into()), Addr::Mem("s1".into())],
            shard_fn: ShardFnSpec::paper_default(),
        }
    }

    fn payload_with_key(key: u32) -> Vec<u8> {
        let mut p = vec![0u8; 14];
        p[10..14].copy_from_slice(&key.to_le_bytes());
        p
    }

    #[tokio::test]
    async fn redirects_canonical_sends_to_shards() {
        let info = shard_info();
        let (a, b) = pair::<Datagram>(16);
        let mut pick = Offer::from_chunnel(&ShardClientChunnel);
        pick.ext = info.to_ext();
        let conn = ShardClientChunnel
            .slot_apply(pick, vec![], a)
            .await
            .unwrap();

        let mut seen = std::collections::HashSet::new();
        for key in 0..50u32 {
            let p = payload_with_key(key);
            let expect = info.shard_addr(&p).clone();
            conn.send((info.canonical.clone(), p.into())).await.unwrap();
            let (to, _) = b.recv().await.unwrap();
            assert_eq!(to, expect);
            seen.insert(to);
        }
        assert_eq!(seen.len(), 2, "both shards receive traffic");
    }

    #[tokio::test]
    async fn non_canonical_sends_pass_through() {
        let info = shard_info();
        let (a, b) = pair::<Datagram>(4);
        let mut pick = Offer::from_chunnel(&ShardClientChunnel);
        pick.ext = info.to_ext();
        let conn = ShardClientChunnel
            .slot_apply(pick, vec![], a)
            .await
            .unwrap();
        let other = Addr::Mem("elsewhere".into());
        conn.send((other.clone(), vec![1].into())).await.unwrap();
        let (to, _) = b.recv().await.unwrap();
        assert_eq!(to, other);
    }

    #[tokio::test]
    async fn shard_replies_are_canonicalized() {
        let info = shard_info();
        let (a, b) = pair::<Datagram>(4);
        let mut pick = Offer::from_chunnel(&ShardClientChunnel);
        pick.ext = info.to_ext();
        let conn = ShardClientChunnel
            .slot_apply(pick, vec![], a)
            .await
            .unwrap();
        b.send((Addr::Mem("s1".into()), vec![9].into())).await.unwrap();
        let (from, _) = conn.recv().await.unwrap();
        assert_eq!(from, info.canonical);
    }

    #[tokio::test]
    async fn pick_without_ext_fails() {
        let (a, _b) = pair::<Datagram>(1);
        let pick = Offer::from_chunnel(&ShardClientChunnel);
        assert!(ShardClientChunnel
            .slot_apply(pick, vec![], a)
            .await
            .is_err());
    }

    #[test]
    fn defer_offers_both_server_impls() {
        let offers = ShardDeferChunnel.slot_offers();
        assert_eq!(offers.len(), 2);
        assert!(offers.iter().any(|o| o.impl_guid == IMPL_STEER));
        assert!(offers.iter().any(|o| o.impl_guid == IMPL_FALLBACK));
    }
}

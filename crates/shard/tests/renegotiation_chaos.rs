//! Chaos tests for runtime re-negotiation: an offload dies *mid-traffic*
//! and the connection must transparently land on the software fallback.
//!
//! Two failure modes from the issue's acceptance criteria:
//!
//! 1. [`lease_expiry_mid_traffic_renegotiates_onto_software`]: the claimed
//!    accelerated implementation's lease lapses (its registrant stopped
//!    renewing — the process died). Traffic runs over a faulty network
//!    (drops, duplicates — in both the send and receive paths) with
//!    `ReliabilityChunnel` stacked on top; across the switchover, zero
//!    requests may be lost or duplicated.
//! 2. [`steerer_death_fails_over_to_software_fallback`]: the simulated-XDP
//!    shard steerer process is killed mid-traffic. The supervisor revokes
//!    its registration and rebinds the canonical address with a
//!    software-only server; the established client connection re-negotiates
//!    onto `shard/fallback` and every request is eventually answered.

use bertha::conn::{pair, BoxFut, ChunnelConnection, Datagram};
use bertha::negotiate::{
    guid, negotiate_server_switchable, negotiate_switchable_client, Endpoints, Negotiate,
    NegotiateOpts, Scope, SwitchableStream,
};
use bertha::{wrap, Addr, Chunnel, ChunnelConnector, ChunnelListener, ConnStream, Error, Select};
use bertha_chunnels::reliable::{ReliabilityChunnel, ReliabilityConfig};
use bertha_discovery::registry::{Hooks, Registration};
use bertha_discovery::resources::ResourceReq;
use bertha_discovery::{DiscoveryClient, Registry, RegistrySource};
use bertha_shard::{
    run_steerer, serve_shard, steerer_registration, supervise_steerer, ShardCanonicalServer,
    ShardDeferChunnel, ShardFnSpec, ShardInfo, IMPL_FALLBACK, IMPL_STEER,
};
use bertha_transport::fault::{FaultChunnel, FaultConfig};
use bertha_transport::udp::{UdpConnector, UdpListener};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const RELAY_CAPABILITY: u64 = guid("chaos/relay");
const RELAY_ACCEL: u64 = guid("chaos/relay/accel");
const RELAY_SOFT: u64 = guid("chaos/relay/soft");

/// A stand-in accelerated implementation: host-scoped, so discovery gates
/// it on a (leased) registration. Data-path-wise it is a passthrough — the
/// *test* is about which one negotiation picks, not what they do.
#[derive(Clone, Copy, Debug, Default)]
struct AccelRelay;

impl Negotiate for AccelRelay {
    const CAPABILITY: u64 = RELAY_CAPABILITY;
    const IMPL: u64 = RELAY_ACCEL;
    const NAME: &'static str = "chaos/relay/accel";
    const ENDPOINTS: Endpoints = Endpoints::Both;
    const SCOPE: Scope = Scope::Host;
    fn priority(&self) -> i32 {
        10
    }
}

impl<InC> Chunnel<InC> for AccelRelay
where
    InC: ChunnelConnection + Send + 'static,
{
    type Connection = InC;

    fn connect_wrap(&self, inner: InC) -> BoxFut<'static, Result<InC, Error>> {
        Box::pin(async move { Ok(inner) })
    }
}

bertha::negotiable!(AccelRelay);

/// The always-available software fallback for the same capability.
#[derive(Clone, Copy, Debug, Default)]
struct SoftRelay;

impl Negotiate for SoftRelay {
    const CAPABILITY: u64 = RELAY_CAPABILITY;
    const IMPL: u64 = RELAY_SOFT;
    const NAME: &'static str = "chaos/relay/soft";
    const ENDPOINTS: Endpoints = Endpoints::Both;
    const SCOPE: Scope = Scope::Application;
}

impl<InC> Chunnel<InC> for SoftRelay
where
    InC: ChunnelConnection + Send + 'static,
{
    type Connection = InC;

    fn connect_wrap(&self, inner: InC) -> BoxFut<'static, Result<InC, Error>> {
        Box::pin(async move { Ok(inner) })
    }
}

bertha::negotiable!(SoftRelay);

fn accel_registration() -> Registration {
    Registration {
        capability: RELAY_CAPABILITY,
        impl_guid: RELAY_ACCEL,
        name: "chaos/relay/accel".into(),
        endpoints: Endpoints::Both,
        scope: Scope::Host,
        priority: 20,
        resources: ResourceReq::none(),
        device: None,
    }
}

/// Send ids one at a time and require the matching echo for each: with
/// `ReliabilityChunnel` in the stack, a lost or duplicated request shows up
/// as a missing or doubled entry in the server's log.
async fn lockstep<C>(conn: &C, addr: &Addr, ids: std::ops::Range<u64>)
where
    C: ChunnelConnection<Data = Datagram>,
{
    for i in ids {
        let payload = i.to_le_bytes().to_vec();
        conn.send((addr.clone(), payload.clone()))
            .await
            .expect("send");
        let (_, echo) = tokio::time::timeout(Duration::from_secs(10), conn.recv())
            .await
            .unwrap_or_else(|_| panic!("no echo for request {i} within 10s"))
            .expect("recv");
        assert_eq!(echo, payload, "echo for request {i}");
    }
}

#[tokio::test]
async fn lease_expiry_mid_traffic_renegotiates_onto_software() {
    const TTL: Duration = Duration::from_millis(150);

    // A host registry with a leased "accelerated" implementation, renewed
    // by a registrant task, expired by an agent-style sweeper.
    let registry = Arc::new(Registry::new());
    registry
        .register_leased(accel_registration(), Hooks::none(), TTL)
        .unwrap();
    let renew_registry = Arc::clone(&registry);
    let renewal = tokio::spawn(async move {
        loop {
            tokio::time::sleep(Duration::from_millis(40)).await;
            if renew_registry.renew_lease(RELAY_ACCEL, TTL).is_err() {
                return;
            }
        }
    });
    let sweep_registry = Arc::clone(&registry);
    tokio::spawn(async move {
        loop {
            tokio::time::sleep(Duration::from_millis(25)).await;
            sweep_registry.expire_stale();
        }
    });

    // A faulty network: drops, duplicates, and reordering on the wire plus
    // drops and duplicates in each endpoint's *receive* path.
    let faults = FaultConfig {
        drop: 0.12,
        duplicate: 0.05,
        reorder: 0.05,
        recv_drop: 0.08,
        recv_duplicate: 0.05,
        ..Default::default()
    };
    let (cli_raw, srv_raw) = pair::<Datagram>(1024);
    let cli_fault = FaultChunnel::new(FaultConfig { seed: 11, ..faults })
        .connect_wrap(cli_raw)
        .await
        .unwrap();
    let srv_fault = FaultChunnel::new(FaultConfig { seed: 22, ..faults })
        .connect_wrap(srv_raw)
        .await
        .unwrap();

    // Reliability above the negotiated relay slot: exactly-once delivery
    // must hold across both the faults and the switchover.
    let rcfg = ReliabilityConfig {
        rto: Duration::from_millis(30),
        max_retries: 15,
        rto_max: Duration::from_millis(120),
        window: 32,
    };
    let stack = wrap!(
        ReliabilityChunnel::new(rcfg),
        Select::new(AccelRelay, SoftRelay)
    );

    let server_dc = DiscoveryClient::new(Arc::clone(&registry) as Arc<dyn RegistrySource>);
    let client_dc = DiscoveryClient::new(Arc::clone(&registry) as Arc<dyn RegistrySource>);
    let srv_opts = NegotiateOpts::named("chaos-srv").with_filter(server_dc.clone());
    let cli_opts = NegotiateOpts::named("chaos-cli").with_filter(client_dc.clone());

    let addr = Addr::Mem("chaos".into());
    let srv_stack = stack.clone();
    let srv_task =
        tokio::spawn(
            async move { negotiate_server_switchable(srv_stack, srv_fault, srv_opts).await },
        );
    let (cli, picks) =
        negotiate_switchable_client(stack, cli_fault, addr.clone(), cli_opts.clone())
            .await
            .unwrap();
    let srv = srv_task.await.unwrap().unwrap();

    let relay_pick = |picks: &[bertha::negotiate::Offer]| {
        picks
            .iter()
            .find(|p| p.capability == RELAY_CAPABILITY)
            .expect("a relay pick")
            .impl_guid
    };
    assert_eq!(
        relay_pick(&picks.picks),
        RELAY_ACCEL,
        "with a live lease, negotiation prefers the accelerated impl"
    );

    // Echo server, recording every delivered request id.
    let seen = Arc::new(Mutex::new(Vec::<u64>::new()));
    let seen_srv = Arc::clone(&seen);
    let srv_conn = srv.clone();
    tokio::spawn(async move {
        loop {
            let (from, payload) = match srv_conn.recv().await {
                Ok(d) => d,
                Err(_) => return,
            };
            if payload.len() == 8 {
                let id = u64::from_le_bytes(payload[..8].try_into().unwrap());
                seen_srv.lock().unwrap().push(id);
            }
            let _ = srv_conn.send((from, payload)).await;
        }
    });

    // Phase 1: traffic over the accelerated pick.
    lockstep(&cli, &addr, 0..30).await;

    // Kill the registrant. The lease lapses, the sweeper withdraws the
    // registration, the client's revocation watcher notices, and the
    // connection re-negotiates — while phase-2 traffic keeps flowing.
    renewal.abort();
    let t0 = Instant::now();
    let mut revs = client_dc.revocations(Duration::from_millis(20));
    let reneg_cli = cli.clone();
    let reneg_dc = Arc::clone(&client_dc);
    let current_picks = picks.picks.clone();
    let supervise = async move {
        loop {
            tokio::time::timeout(Duration::from_secs(10), revs.changed())
                .await
                .expect("revocation watcher should observe the lease expiring")
                .expect("watcher outlives the test");
            if let Ok(false) = reneg_dc.picks_still_valid(&current_picks).await {
                break;
            }
        }
        let p = reneg_cli
            .renegotiate()
            .await
            .expect("renegotiation should land on the software fallback");
        (p, t0.elapsed())
    };
    let ((new_picks, switchover), ()) = tokio::join!(supervise, lockstep(&cli, &addr, 30..60));

    assert_eq!(
        relay_pick(&new_picks.picks),
        RELAY_SOFT,
        "the expired impl is withdrawn; the pick falls back to software"
    );
    let budget = TTL + cli_opts.handshake_budget() + Duration::from_secs(1);
    assert!(
        switchover < budget,
        "switchover took {switchover:?}; budget is lease TTL + one round = {budget:?}"
    );

    // Phase 3: traffic on the fallback, same connection objects.
    lockstep(&cli, &addr, 60..90).await;
    assert_eq!(cli.epoch(), 1);
    assert_eq!(srv.epoch(), 1);

    // Telemetry agrees with the ground truth: each side swapped its stack
    // exactly once, the client pushed at least the 90 lockstep requests
    // through the switchable data path (more, counting retransmits and
    // ACKs), and the server saw each of them at least once. Stale-epoch
    // frames may have been *dropped* (that is the mechanism that prevents
    // cross-epoch double delivery) but the exactly-once check below proves
    // none of them were double-delivered.
    assert_eq!(cli.telemetry().epoch_swaps.get(), 1);
    assert_eq!(srv.telemetry().epoch_swaps.get(), 1);
    assert!(cli.telemetry().frames_sent.get() >= 90);
    assert!(srv.telemetry().frames_recv.get() >= 90);
    assert!(
        bertha_telemetry::counter("reliable.retransmits").get() > 0,
        "a 12% lossy link must force retransmissions"
    );

    // The live introspection surface shows the post-swap reality: the
    // software relay bound at epoch 1, the dead accelerated impl gone.
    let report = cli.introspect().expect("a negotiated stack to introspect");
    assert_eq!(report.epoch, 1);
    assert!(
        report.binds("chaos/relay/soft"),
        "introspected stack must show the software relay:\n{}",
        report.render()
    );
    assert!(!report.binds("chaos/relay/accel"));

    // Exactly-once across faults *and* the switchover: every request id
    // delivered to the server exactly one time.
    let mut ids = seen.lock().unwrap().clone();
    ids.sort_unstable();
    assert_eq!(
        ids,
        (0..90).collect::<Vec<u64>>(),
        "zero requests lost or duplicated"
    );
    println!("lease-expiry switchover: {switchover:?}");
}

/// Retry an application request until its echo (`payload + '!'`) arrives.
/// The raw UDP path has no reliability layer, so requests sent into the
/// dead window simply vanish; the application-level retry is what "no
/// request goes unanswered" means for this deployment.
async fn request_until_echoed<C>(conn: &C, addr: &Addr, payload: Vec<u8>, overall: Duration)
where
    C: ChunnelConnection<Data = Datagram>,
{
    let mut expected = payload.clone();
    expected.push(b'!');
    let deadline = Instant::now() + overall;
    while Instant::now() < deadline {
        let _ = conn.send((addr.clone(), payload.clone())).await;
        if let Ok(Ok((_, reply))) =
            tokio::time::timeout(Duration::from_millis(250), conn.recv()).await
        {
            if reply == expected {
                return;
            }
        }
    }
    panic!(
        "request {:?} unanswered after {overall:?}",
        String::from_utf8_lossy(&payload)
    );
}

#[tokio::test]
async fn steerer_death_fails_over_to_software_fallback() {
    // Three echo shards.
    let mut shards = Vec::new();
    let mut shard_tasks = Vec::new();
    for _ in 0..3 {
        let (addr, task, _stats) = serve_shard(
            Addr::Udp("127.0.0.1:0".parse().unwrap()),
            |payload: Vec<u8>| async move {
                let mut r = payload;
                r.push(b'!');
                Some(r)
            },
        )
        .await
        .unwrap();
        shards.push(addr);
        shard_tasks.push(task);
    }

    // Host registry with the steerer registered.
    let registry = Arc::new(Registry::new());
    let (steer_reg, steer_hooks, _configured) = steerer_registration(None);
    registry.register(steer_reg, steer_hooks).unwrap();

    // Internal canonical server behind the steerer, accepting switchable
    // connections.
    let raw = UdpListener::default()
        .listen(Addr::Udp("127.0.0.1:0".parse().unwrap()))
        .await
        .unwrap();
    let internal = raw.local_addr();
    let mut info = ShardInfo {
        canonical: Addr::Udp("127.0.0.1:0".parse().unwrap()),
        shards,
        shard_fn: ShardFnSpec::paper_default(),
    };
    let steerer = run_steerer(info.canonical.clone(), internal, info.clone())
        .await
        .unwrap();
    let canonical = steerer.canonical().clone();
    let kill = steerer.abort_handle();
    info.canonical = canonical.clone();

    let server_dc = DiscoveryClient::new(Arc::clone(&registry) as Arc<dyn RegistrySource>);
    let srv_opts = NegotiateOpts::named("kv-srv").with_filter(server_dc.clone());
    let mut stream = SwitchableStream::new(
        raw,
        wrap!(ShardCanonicalServer::new(info.clone())),
        srv_opts,
    );
    tokio::spawn(async move {
        let mut held = Vec::new();
        while let Some(conn) = stream.next().await {
            if let Ok(c) = conn {
                held.push(c);
            }
        }
    });

    // The supervisor: on steerer death, revoke its registration and rebind
    // the canonical address with a software-only server.
    let sup_registry = Arc::clone(&registry);
    let sup = supervise_steerer(
        steerer,
        info,
        NegotiateOpts::named("fallback-srv"),
        move || async move {
            sup_registry.revoke(IMPL_STEER);
            Ok::<_, Error>(())
        },
    );

    // Client: negotiate through the steerer; the steered impl wins.
    let client_dc = DiscoveryClient::new(Arc::clone(&registry) as Arc<dyn RegistrySource>);
    let cli_opts = NegotiateOpts::named("kv-cli").with_filter(client_dc.clone());
    let raw_cli = UdpConnector.connect(canonical.clone()).await.unwrap();
    let (cli, picks) = negotiate_switchable_client(
        wrap!(ShardDeferChunnel),
        raw_cli,
        canonical.clone(),
        cli_opts,
    )
    .await
    .unwrap();
    assert_eq!(picks.picks[0].impl_guid, IMPL_STEER);

    let payload = |i: usize| format!("request-{i:04}-padding").into_bytes();

    // Phase 1: steered traffic.
    for i in 0..10 {
        request_until_echoed(&cli, &canonical, payload(i), Duration::from_secs(3)).await;
    }

    // Kill the steerer mid-run; watch discovery for the revocation, then
    // re-negotiate. The first attempts may race the supervisor's rebind of
    // the canonical address, so retry until one round completes.
    kill.abort();
    let t0 = Instant::now();
    let mut revs = client_dc.revocations(Duration::from_millis(20));
    loop {
        tokio::time::timeout(Duration::from_secs(10), revs.changed())
            .await
            .expect("revocation watcher should observe the steerer being revoked")
            .expect("watcher outlives the test");
        if let Ok(false) = client_dc.picks_still_valid(&picks.picks).await {
            break;
        }
    }
    let new_picks = loop {
        match cli.renegotiate().await {
            Ok(p) => break p,
            Err(e) if t0.elapsed() < Duration::from_secs(15) => {
                let _ = e;
                tokio::time::sleep(Duration::from_millis(50)).await;
            }
            Err(e) => panic!("renegotiation never succeeded: {e}"),
        }
    };
    let switchover = t0.elapsed();
    assert_eq!(
        new_picks.picks[0].impl_guid, IMPL_FALLBACK,
        "the revoked steerer is withdrawn; the pick falls back to in-app dispatch"
    );
    assert!(cli.epoch() >= 1);
    assert!(
        switchover < Duration::from_secs(10),
        "failover took {switchover:?}"
    );

    let fallback = sup
        .await
        .expect("supervisor task")
        .expect("the fallback server must come up on the canonical address");
    assert_eq!(fallback.canonical, canonical);

    // Phase 2: same connection, now served by the in-app dispatcher.
    for i in 10..20 {
        request_until_echoed(&cli, &canonical, payload(i), Duration::from_secs(5)).await;
    }
    println!("steerer-death switchover: {switchover:?}");
    drop(fallback);
}

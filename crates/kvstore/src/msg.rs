//! The KV RPC wire format.
//!
//! Request layout (all integers little-endian):
//!
//! ```text
//! offset  0..8   msgid: u64     request/response matching
//! offset  8..10  op:    u16     operation code
//! offset 10..14  keyhash: u32   fnv1a(key) truncated — THE SHARDING FIELD
//! offset 14..    body           bincode (key, value, scan count)
//! ```
//!
//! The key hash sits at bytes 10..14 by construction so that Listing 4's
//! sharding function — `|p: Pkt| { p.dst_port = hash(p.payload[10..14]) % 3 }`
//! — works verbatim on these payloads without deserializing them.

use bertha::Error;
use serde::{Deserialize, Serialize};

/// Where the 4-byte sharding field lives in a request payload.
pub const KEYHASH_OFFSET: usize = 10;
/// Length of the sharding field.
pub const KEYHASH_LEN: usize = 4;
const HEADER: usize = 14;

/// KV operations.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Read a key.
    Get,
    /// Write a key.
    Put,
    /// Remove a key.
    Delete,
    /// Read up to `count` keys starting at `key` in order (YCSB workload
    /// E's scan).
    Scan {
        /// Maximum keys to return.
        count: u32,
    },
    /// Read-modify-write: append a byte to the value (YCSB workload F).
    Rmw,
}

impl Op {
    fn code(&self) -> u16 {
        match self {
            Op::Get => 0,
            Op::Put => 1,
            Op::Delete => 2,
            Op::Scan { .. } => 3,
            Op::Rmw => 4,
        }
    }
}

/// A KV request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Msg {
    /// Request id, echoed in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// The key.
    pub key: String,
    /// The value, for writes.
    pub val: Option<Vec<u8>>,
}

/// Response status.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Operation succeeded.
    Ok,
    /// Key not present.
    NotFound,
    /// Malformed or unsupported request.
    Bad,
}

/// A KV response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Resp {
    /// The request id this answers.
    pub id: u64,
    /// Outcome.
    pub status: Status,
    /// Value for `Get`/`Rmw`; `Scan` results are bincode inside.
    pub val: Option<Vec<u8>>,
}

/// The FNV-1a-derived sharding field for a key — must agree with
/// [`bertha_shard::info::fnv1a`] so client push, steerer, and fallback all
/// route identically.
pub fn keyhash(key: &str) -> u32 {
    bertha_shard::info::fnv1a(key.as_bytes()) as u32
}

impl Msg {
    /// Encode to the wire layout.
    pub fn encode(&self) -> Vec<u8> {
        #[derive(Serialize)]
        struct Body<'a> {
            op: &'a Op,
            key: &'a str,
            val: &'a Option<Vec<u8>>,
        }
        let body = bincode::serialize(&Body {
            op: &self.op,
            key: &self.key,
            val: &self.val,
        })
        .expect("kv body serializes");
        let mut out = Vec::with_capacity(HEADER + body.len());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.op.code().to_le_bytes());
        out.extend_from_slice(&keyhash(&self.key).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode from the wire layout, checking header/body consistency.
    pub fn decode(buf: &[u8]) -> Result<Msg, Error> {
        if buf.len() < HEADER {
            return Err(Error::Encode("kv request too short".into()));
        }
        let id = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let code = u16::from_le_bytes(buf[8..10].try_into().unwrap());
        let hash = u32::from_le_bytes(buf[10..14].try_into().unwrap());
        #[derive(Deserialize)]
        struct Body {
            op: Op,
            key: String,
            val: Option<Vec<u8>>,
        }
        let body: Body = bincode::deserialize(&buf[HEADER..])?;
        if body.op.code() != code {
            return Err(Error::Encode("kv op code mismatch".into()));
        }
        if keyhash(&body.key) != hash {
            return Err(Error::Encode("kv key hash mismatch".into()));
        }
        Ok(Msg {
            id,
            op: body.op,
            key: body.key,
            val: body.val,
        })
    }
}

impl Resp {
    /// Encode to bytes (plain bincode; responses are not sharded).
    pub fn encode(&self) -> Vec<u8> {
        bincode::serialize(self).expect("kv response serializes")
    }

    /// Decode from bytes.
    pub fn decode(buf: &[u8]) -> Result<Resp, Error> {
        Ok(bincode::deserialize(buf)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha_shard::info::ShardFnSpec;

    fn msg(key: &str) -> Msg {
        Msg {
            id: 77,
            op: Op::Put,
            key: key.into(),
            val: Some(vec![1, 2, 3]),
        }
    }

    #[test]
    fn round_trip() {
        let m = msg("user:42");
        let wire = m.encode();
        assert_eq!(Msg::decode(&wire).unwrap(), m);
    }

    #[test]
    fn keyhash_sits_at_paper_offset() {
        let m = msg("some-key");
        let wire = m.encode();
        let field = u32::from_le_bytes(
            wire[KEYHASH_OFFSET..KEYHASH_OFFSET + KEYHASH_LEN]
                .try_into()
                .unwrap(),
        );
        assert_eq!(field, keyhash("some-key"));

        // And the paper's shard_fn spec extracts exactly that field.
        let spec = ShardFnSpec::paper_default();
        assert_eq!(spec.offset, KEYHASH_OFFSET);
        assert_eq!(spec.len, KEYHASH_LEN);
        let h = spec.hash_payload(&wire);
        assert_eq!(
            h,
            bertha_shard::info::fnv1a(&keyhash("some-key").to_le_bytes())
        );
    }

    #[test]
    fn tampered_hash_detected() {
        let mut wire = msg("k").encode();
        wire[KEYHASH_OFFSET] ^= 0xff;
        assert!(Msg::decode(&wire).is_err());
    }

    #[test]
    fn tampered_op_detected() {
        let mut wire = msg("k").encode();
        wire[8] ^= 0x01;
        assert!(Msg::decode(&wire).is_err());
    }

    #[test]
    fn short_and_garbage_rejected() {
        assert!(Msg::decode(&[1, 2, 3]).is_err());
        assert!(Msg::decode(&[0u8; 64]).is_err());
    }

    #[test]
    fn resp_round_trip() {
        let r = Resp {
            id: 9,
            status: Status::NotFound,
            val: None,
        };
        assert_eq!(Resp::decode(&r.encode()).unwrap(), r);
    }

    proptest::proptest! {
        #[test]
        fn encode_decode_arbitrary(id in proptest::prelude::any::<u64>(), key in "[a-z0-9:]{0,40}", val in proptest::option::of(proptest::collection::vec(proptest::prelude::any::<u8>(), 0..256))) {
            let m = Msg { id, op: Op::Put, key, val };
            proptest::prop_assert_eq!(Msg::decode(&m.encode()).unwrap(), m);
        }
    }
}

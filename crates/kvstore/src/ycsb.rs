//! A YCSB-style workload generator.
//!
//! Replaces the Java YCSB tool the paper used (§5: "300,000 YCSB requests
//! (workload A, read-heavy) with a uniform distribution of keys").
//! Implements the standard workload mixes A–F from the YCSB paper (Cooper
//! et al., SoCC '10) and the three key distributions they use: uniform,
//! zipfian (the Gray et al. rejection-free sampler), and latest.

use crate::msg::Op;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How keys are chosen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipf-distributed popularity with the given theta (YCSB default
    /// 0.99).
    Zipfian {
        /// Skew parameter in (0, 1).
        theta: f64,
    },
    /// Most-recently-inserted keys are most popular.
    Latest,
}

/// Operation mix proportions (must sum to ≤ 1; the remainder is reads).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Fraction of reads.
    pub read: f64,
    /// Fraction of updates (writes to existing keys).
    pub update: f64,
    /// Fraction of inserts (new keys).
    pub insert: f64,
    /// Fraction of scans.
    pub scan: f64,
    /// Fraction of read-modify-writes.
    pub rmw: f64,
    /// Key distribution.
    pub dist: KeyDist,
}

/// The named YCSB workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Update heavy: 50/50 read/update, zipfian.
    A,
    /// Read mostly: 95/5 read/update, zipfian.
    B,
    /// Read only, zipfian.
    C,
    /// Read latest: 95/5 read/insert, latest.
    D,
    /// Short ranges: 95/5 scan/insert, zipfian.
    E,
    /// Read-modify-write: 50/50 read/rmw, zipfian.
    F,
}

impl Workload {
    /// The standard mix for this workload.
    pub fn spec(self) -> WorkloadSpec {
        let zipf = KeyDist::Zipfian { theta: 0.99 };
        match self {
            Workload::A => WorkloadSpec {
                read: 0.5,
                update: 0.5,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
                dist: zipf,
            },
            Workload::B => WorkloadSpec {
                read: 0.95,
                update: 0.05,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
                dist: zipf,
            },
            Workload::C => WorkloadSpec {
                read: 1.0,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
                dist: zipf,
            },
            Workload::D => WorkloadSpec {
                read: 0.95,
                update: 0.0,
                insert: 0.05,
                scan: 0.0,
                rmw: 0.0,
                dist: KeyDist::Latest,
            },
            Workload::E => WorkloadSpec {
                read: 0.0,
                update: 0.0,
                insert: 0.05,
                scan: 0.95,
                rmw: 0.0,
                dist: zipf,
            },
            Workload::F => WorkloadSpec {
                read: 0.5,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.5,
                dist: zipf,
            },
        }
    }

    /// The mix with the key distribution overridden (the paper runs
    /// workload A with *uniform* keys).
    pub fn with_dist(self, dist: KeyDist) -> WorkloadSpec {
        WorkloadSpec {
            dist,
            ..self.spec()
        }
    }
}

/// One generated request.
#[derive(Clone, Debug, PartialEq)]
pub struct GenOp {
    /// The operation (value payloads already filled for writes).
    pub op: Op,
    /// The key.
    pub key: String,
    /// The value for writes.
    pub val: Option<Vec<u8>>,
}

/// Zipfian sampler over `0..n` (Gray et al.'s method, as in YCSB).
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// A sampler over `n` items with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf over an empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Sample an item index; 0 is the most popular.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64 % self.n
    }
}

/// A deterministic stream of KV requests.
pub struct Generator {
    spec: WorkloadSpec,
    rng: StdRng,
    record_count: u64,
    inserted: u64,
    value_size: usize,
    zipf: Option<Zipf>,
}

impl Generator {
    /// A generator over `record_count` pre-loaded records with the given
    /// seed. `value_size` is the byte length of written values.
    pub fn new(spec: WorkloadSpec, record_count: u64, value_size: usize, seed: u64) -> Self {
        let zipf = match spec.dist {
            KeyDist::Zipfian { theta } => Some(Zipf::new(record_count, theta)),
            _ => None,
        };
        Generator {
            spec,
            rng: StdRng::seed_from_u64(seed),
            record_count,
            inserted: 0,
            value_size,
            zipf,
        }
    }

    /// The keys that should be loaded before the run.
    pub fn preload_keys(&self) -> impl Iterator<Item = String> + '_ {
        (0..self.record_count).map(key_name)
    }

    fn pick_key(&mut self) -> String {
        let total = self.record_count + self.inserted;
        let idx = match self.spec.dist {
            KeyDist::Uniform => self.rng.gen_range(0..total),
            KeyDist::Zipfian { .. } => self
                .zipf
                .as_ref()
                .expect("zipf sampler present")
                .sample(&mut self.rng),
            KeyDist::Latest => {
                // Most recent keys most popular: zipf over recency.
                let z = Zipf::new(total, 0.99);
                let back = z.sample(&mut self.rng);
                total - 1 - back.min(total - 1)
            }
        };
        key_name(idx)
    }

    fn value(&mut self) -> Vec<u8> {
        let mut v = vec![0u8; self.value_size];
        self.rng.fill(&mut v[..]);
        v
    }

    /// Generate the next request.
    pub fn next_op(&mut self) -> GenOp {
        let r: f64 = self.rng.gen();
        let s = &self.spec;
        if r < s.read {
            GenOp {
                op: Op::Get,
                key: self.pick_key(),
                val: None,
            }
        } else if r < s.read + s.update {
            let val = self.value();
            GenOp {
                op: Op::Put,
                key: self.pick_key(),
                val: Some(val),
            }
        } else if r < s.read + s.update + s.insert {
            let key = key_name(self.record_count + self.inserted);
            self.inserted += 1;
            let val = self.value();
            GenOp {
                op: Op::Put,
                key,
                val: Some(val),
            }
        } else if r < s.read + s.update + s.insert + s.scan {
            let count = self.rng.gen_range(1..=100);
            GenOp {
                op: Op::Scan { count },
                key: self.pick_key(),
                val: None,
            }
        } else {
            GenOp {
                op: Op::Rmw,
                key: self.pick_key(),
                val: None,
            }
        }
    }
}

/// YCSB-style key naming.
pub fn key_name(idx: u64) -> String {
    format!("user{idx}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn workload_a_mix_is_half_and_half() {
        let mut g = Generator::new(Workload::A.with_dist(KeyDist::Uniform), 1000, 8, 42);
        let mut reads = 0;
        let mut writes = 0;
        for _ in 0..10_000 {
            match g.next_op().op {
                Op::Get => reads += 1,
                Op::Put => writes += 1,
                other => panic!("unexpected op in workload A: {other:?}"),
            }
        }
        assert!((4500..5500).contains(&reads), "reads = {reads}");
        assert!((4500..5500).contains(&writes), "writes = {writes}");
    }

    #[test]
    fn workload_e_scans() {
        let mut g = Generator::new(Workload::E.spec(), 1000, 8, 7);
        let scans = (0..1000)
            .filter(|_| matches!(g.next_op().op, Op::Scan { .. }))
            .count();
        assert!(scans > 900, "scans = {scans}");
    }

    #[test]
    fn uniform_keys_spread() {
        let mut g = Generator::new(Workload::C.with_dist(KeyDist::Uniform), 100, 8, 1);
        let mut counts: HashMap<String, u32> = HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(g.next_op().key).or_default() += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let min = counts.values().min().copied().unwrap();
        assert!(
            max < min * 2,
            "uniform distribution too skewed: min {min}, max {max}"
        );
    }

    #[test]
    fn zipfian_keys_skewed() {
        let mut g = Generator::new(Workload::C.spec(), 1000, 8, 1);
        let mut counts: HashMap<String, u32> = HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(g.next_op().key).or_default() += 1;
        }
        // The most popular key should dwarf the median.
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            freqs[0] > 20 * freqs[freqs.len() / 2].max(1),
            "head {} vs median {}",
            freqs[0],
            freqs[freqs.len() / 2]
        );
    }

    #[test]
    fn zipf_sampler_in_range_and_head_heavy() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = 0;
        for _ in 0..10_000 {
            let s = z.sample(&mut rng);
            assert!(s < 10_000);
            if s < 100 {
                head += 1;
            }
        }
        assert!(head > 4000, "top 1% drew {head} of 10000 samples");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Generator::new(Workload::A.spec(), 100, 8, 9);
        let mut b = Generator::new(Workload::A.spec(), 100, 8, 9);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn inserts_extend_keyspace() {
        let mut g = Generator::new(Workload::D.spec(), 10, 8, 5);
        let mut saw_new_key = false;
        for _ in 0..200 {
            let op = g.next_op();
            if let Op::Put = op.op {
                let idx: u64 = op.key.trim_start_matches("user").parse().unwrap();
                if idx >= 10 {
                    saw_new_key = true;
                }
            }
        }
        assert!(saw_new_key, "workload D must insert new keys");
    }
}

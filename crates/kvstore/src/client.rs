//! The KV RPC client (Listing 5's `get_key`, grown up).
//!
//! Wraps any byte-level connection (negotiated, sharded, or raw) with
//! request/response matching by message id, per-request timeouts, and
//! retries. A pump task routes responses to waiting requests, so any
//! number of requests may be in flight concurrently.

use crate::msg::{Msg, Op, Resp, Status};
use bertha::conn::{ChunnelConnection, Datagram};
use bertha::{Addr, Error};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::sync::oneshot;

/// Client-side request options.
#[derive(Clone, Copy, Debug)]
pub struct KvClientConfig {
    /// Per-attempt response timeout.
    pub timeout: Duration,
    /// Retransmissions before giving up (UDP below: requests can vanish).
    pub retries: usize,
}

impl Default for KvClientConfig {
    fn default() -> Self {
        KvClientConfig {
            timeout: Duration::from_millis(500),
            retries: 3,
        }
    }
}

/// See the module docs.
pub struct KvClient<C> {
    conn: Arc<C>,
    service: Addr,
    cfg: KvClientConfig,
    next_id: AtomicU64,
    pending: Arc<Mutex<HashMap<u64, oneshot::Sender<Resp>>>>,
    pump: tokio::task::JoinHandle<()>,
}

impl<C> Drop for KvClient<C> {
    fn drop(&mut self) {
        self.pump.abort();
    }
}

impl<C> KvClient<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    /// Wrap `conn`; requests are addressed to `service` (the canonical
    /// address — a sharding chunnel below may rewrite it).
    pub fn new(conn: C, service: Addr) -> Self {
        Self::with_config(conn, service, KvClientConfig::default())
    }

    /// Wrap with explicit timeout/retry parameters.
    pub fn with_config(conn: C, service: Addr, cfg: KvClientConfig) -> Self {
        let conn = Arc::new(conn);
        let pending: Arc<Mutex<HashMap<u64, oneshot::Sender<Resp>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let pump = {
            let conn = Arc::clone(&conn);
            let pending = Arc::clone(&pending);
            tokio::spawn(async move {
                loop {
                    let (_, payload) = match conn.recv().await {
                        Ok(d) => d,
                        Err(_) => return,
                    };
                    let Ok(resp) = Resp::decode(&payload) else {
                        continue;
                    };
                    if let Some(tx) = pending.lock().remove(&resp.id) {
                        let _ = tx.send(resp);
                    }
                    // else: a late duplicate after retry already answered
                }
            })
        };
        KvClient {
            conn,
            service,
            cfg,
            next_id: AtomicU64::new(1),
            pending,
            pump,
        }
    }

    async fn request(&self, op: Op, key: String, val: Option<Vec<u8>>) -> Result<Resp, Error> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let wire = Msg { id, op, key, val }.encode();

        for _attempt in 0..=self.cfg.retries {
            let (tx, rx) = oneshot::channel();
            self.pending.lock().insert(id, tx);
            self.conn.send((self.service.clone(), wire.clone().into())).await?;
            match tokio::time::timeout(self.cfg.timeout, rx).await {
                Ok(Ok(resp)) => return Ok(resp),
                Ok(Err(_)) => return Err(Error::ConnectionClosed),
                Err(_elapsed) => {
                    self.pending.lock().remove(&id);
                }
            }
        }
        Err(Error::Timeout {
            after: self.cfg.timeout * (self.cfg.retries as u32 + 1),
            what: "kv response",
        })
    }

    /// Read a key.
    pub async fn get(&self, key: impl Into<String>) -> Result<Option<Vec<u8>>, Error> {
        let resp = self.request(Op::Get, key.into(), None).await?;
        match resp.status {
            Status::Ok => Ok(resp.val),
            Status::NotFound => Ok(None),
            Status::Bad => Err(Error::Other("server rejected get".into())),
        }
    }

    /// Write a key.
    pub async fn put(&self, key: impl Into<String>, val: Vec<u8>) -> Result<(), Error> {
        let resp = self.request(Op::Put, key.into(), Some(val)).await?;
        match resp.status {
            Status::Ok => Ok(()),
            other => Err(Error::Other(format!("put failed: {other:?}"))),
        }
    }

    /// Remove a key. Returns whether it existed.
    pub async fn delete(&self, key: impl Into<String>) -> Result<bool, Error> {
        let resp = self.request(Op::Delete, key.into(), None).await?;
        match resp.status {
            Status::Ok => Ok(true),
            Status::NotFound => Ok(false),
            Status::Bad => Err(Error::Other("server rejected delete".into())),
        }
    }

    /// Scan `count` keys in order starting at `start`.
    pub async fn scan(
        &self,
        start: impl Into<String>,
        count: u32,
    ) -> Result<Vec<(String, Vec<u8>)>, Error> {
        let resp = self.request(Op::Scan { count }, start.into(), None).await?;
        match (resp.status, resp.val) {
            (Status::Ok, Some(rows)) => Ok(bincode::deserialize(&rows)?),
            (Status::Ok, None) => Ok(vec![]),
            (other, _) => Err(Error::Other(format!("scan failed: {other:?}"))),
        }
    }

    /// Read-modify-write a key; returns the new value.
    pub async fn rmw(&self, key: impl Into<String>) -> Result<Option<Vec<u8>>, Error> {
        let resp = self.request(Op::Rmw, key.into(), None).await?;
        match resp.status {
            Status::Ok => Ok(resp.val),
            Status::NotFound => Ok(None),
            Status::Bad => Err(Error::Other("server rejected rmw".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use bertha::conn::pair;

    /// A loopback "server" answering KV requests on a channel pair.
    fn spawn_loopback_server(conn: impl ChunnelConnection<Data = Datagram> + 'static) {
        let store = Store::new();
        tokio::spawn(async move {
            loop {
                let (from, payload) = match conn.recv().await {
                    Ok(d) => d,
                    Err(_) => return,
                };
                if let Some(reply) = store.handle_payload(payload.into_vec()) {
                    let _ = conn.send((from, reply.into())).await;
                }
            }
        });
    }

    #[tokio::test]
    async fn get_put_delete_round_trip() {
        let (cli, srv) = pair::<Datagram>(64);
        spawn_loopback_server(srv);
        let client = KvClient::new(cli, Addr::Mem("svc".into()));

        assert_eq!(client.get("missing").await.unwrap(), None);
        client.put("k", b"value".to_vec()).await.unwrap();
        assert_eq!(client.get("k").await.unwrap().unwrap(), b"value");
        assert!(client.delete("k").await.unwrap());
        assert!(!client.delete("k").await.unwrap());
    }

    #[tokio::test]
    async fn concurrent_requests_matched_by_id() {
        let (cli, srv) = pair::<Datagram>(256);
        spawn_loopback_server(srv);
        let client = Arc::new(KvClient::new(cli, Addr::Mem("svc".into())));

        let mut tasks = Vec::new();
        for i in 0..50u32 {
            let c = Arc::clone(&client);
            tasks.push(tokio::spawn(async move {
                let key = format!("key-{i}");
                c.put(key.clone(), i.to_le_bytes().to_vec()).await.unwrap();
                let got = c.get(key).await.unwrap().unwrap();
                assert_eq!(got, i.to_le_bytes().to_vec());
            }));
        }
        for t in tasks {
            t.await.unwrap();
        }
    }

    #[tokio::test]
    async fn timeout_when_server_silent() {
        let (cli, _srv) = pair::<Datagram>(4);
        let client = KvClient::with_config(
            cli,
            Addr::Mem("svc".into()),
            KvClientConfig {
                timeout: Duration::from_millis(10),
                retries: 1,
            },
        );
        match client.get("k").await {
            Err(Error::Timeout { .. }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[tokio::test]
    async fn retry_survives_one_lost_request() {
        // A server that drops the first datagram it sees.
        let (cli, srv) = pair::<Datagram>(64);
        let store = Store::new();
        tokio::spawn(async move {
            let mut first = true;
            loop {
                let (from, payload) = match srv.recv().await {
                    Ok(d) => d,
                    Err(_) => return,
                };
                if std::mem::take(&mut first) {
                    continue; // drop it
                }
                if let Some(reply) = store.handle_payload(payload.into_vec()) {
                    let _ = srv.send((from, reply.into())).await;
                }
            }
        });
        let client = KvClient::with_config(
            cli,
            Addr::Mem("svc".into()),
            KvClientConfig {
                timeout: Duration::from_millis(50),
                retries: 3,
            },
        );
        client.put("k", b"v".to_vec()).await.unwrap();
    }

    #[tokio::test]
    async fn scan_and_rmw() {
        let (cli, srv) = pair::<Datagram>(64);
        spawn_loopback_server(srv);
        let client = KvClient::new(cli, Addr::Mem("svc".into()));
        for k in ["a", "b", "c"] {
            client.put(k, k.as_bytes().to_vec()).await.unwrap();
        }
        let rows = client.scan("a", 2).await.unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "a");
        let newv = client.rmw("a").await.unwrap().unwrap();
        assert_eq!(newv.len(), 2);
        assert_eq!(client.rmw("zz").await.unwrap(), None);
    }
}

//! The key-value store evaluation application (§5).
//!
//! "Our server application is a key-value store which uses the hashmap
//! implementation from Rust's standard library and serialization from the
//! widely-used bincode crate atop UDP RPCs."
//!
//! Modules:
//!
//! - [`msg`]: the RPC wire format. The 4-byte key hash lives at payload
//!   bytes 10..14 so the sharding function is exactly Listing 4's
//!   `|p| hash(p.payload[10..14]) % n`, evaluable without deserialization;
//! - [`store`]: the store itself and the request handler shard workers run;
//! - [`server`]: wiring — spawn shard workers, serve the canonical address
//!   with a negotiated [`bertha_shard::ShardCanonicalServer`] stack;
//! - [`client`]: an RPC client with request/response matching, timeouts,
//!   and retries (Listing 5's `get_key`);
//! - [`ycsb`]: a YCSB-style workload generator (workloads A–F, uniform /
//!   zipfian / latest key distributions), replacing the Java YCSB tool the
//!   paper used.

#![warn(missing_docs)]

pub mod client;
pub mod msg;
pub mod server;
pub mod store;
pub mod ycsb;

pub use client::KvClient;
pub use msg::{Msg, Op, Resp, Status};
pub use server::{serve_canonical, serve_prepared, shard_info, spawn_shards, KvShardHandle};
pub use store::Store;
pub use ycsb::{KeyDist, Workload, WorkloadSpec};

//! Server wiring: shard workers plus the negotiated canonical listener
//! (Listing 4). The canonical listener is *switchable*: every accepted
//! connection supports mid-connection re-negotiation, and a client whose
//! steered path died mid-run can open with a `Renegotiate` and land on
//! the software fallback without losing its session.

use crate::store::Store;
use bertha::negotiate::{NegotiateOpts, SwitchableStream};
use bertha::{Addr, ChunnelListener, ConnStream, Error};
use bertha_shard::{serve_shard, ShardCanonicalServer, ShardFnSpec, ShardInfo};
use bertha_transport::udp::UdpListener;
use std::sync::Arc;

/// A running KV shard: its address, store, and worker task.
pub struct KvShardHandle {
    /// Where the shard listens.
    pub addr: Addr,
    /// The shard's data (threads in the paper; tasks here).
    pub store: Arc<Store>,
    task: tokio::task::JoinHandle<()>,
}

impl KvShardHandle {
    /// Stop the worker.
    pub fn stop(&self) {
        self.task.abort();
    }
}

impl Drop for KvShardHandle {
    fn drop(&mut self) {
        self.task.abort();
    }
}

/// Spawn `n` KV shard workers on ephemeral UDP ports ("we implement shards
/// using threads, assigning one thread per shard", §5).
pub async fn spawn_shards(n: usize) -> Result<Vec<KvShardHandle>, Error> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let store = Store::new();
        let handler_store = Arc::clone(&store);
        let (addr, task, _stats) =
            serve_shard(Addr::Udp("127.0.0.1:0".parse().unwrap()), move |payload| {
                let store = Arc::clone(&handler_store);
                async move { store.handle_payload(payload) }
            })
            .await?;
        out.push(KvShardHandle { addr, store, task });
    }
    Ok(out)
}

/// Build the [`ShardInfo`] for a set of spawned shards behind `canonical`.
pub fn shard_info(canonical: Addr, shards: &[KvShardHandle]) -> ShardInfo {
    ShardInfo {
        canonical,
        shards: shards.iter().map(|s| s.addr.clone()).collect(),
        shard_fn: ShardFnSpec::paper_default(),
    }
}

/// The canonical server: listen on `listen_addr` with the
/// `wrap!(shard(...))` stack and accept (and hold) negotiated connections
/// forever. Returns the bound canonical address and the accept-loop task.
///
/// `listen_addr` is the canonical address itself in client-push/fallback
/// deployments, or the *internal* address when a steerer owns the
/// canonical one.
pub async fn serve_canonical(
    listen_addr: Addr,
    mut info: ShardInfo,
    opts: NegotiateOpts,
) -> Result<(Addr, tokio::task::JoinHandle<()>), Error> {
    let raw = UdpListener::default().listen(listen_addr).await?;
    let bound = raw.local_addr();
    // When listening on an ephemeral port, advertise the bound address.
    info.canonical = bound.clone();
    let task = serve_prepared(raw, info, opts);
    Ok((bound, task))
}

/// Serve an already-bound listener (used when a steerer owns the canonical
/// address and the application listens on an internal one). Connections
/// are accepted via [`SwitchableStream`], so each one can be re-negotiated
/// in place if the implementation it picked stops working.
pub fn serve_prepared(
    raw: bertha_transport::udp::UdpIncoming,
    info: ShardInfo,
    opts: NegotiateOpts,
) -> tokio::task::JoinHandle<()> {
    let stack = bertha::wrap!(ShardCanonicalServer::new(info));
    let mut stream = SwitchableStream::new(raw, stack, opts);
    tokio::spawn(async move {
        let mut held = Vec::new();
        while let Some(conn) = stream.next().await {
            match conn {
                // Hold the connection: its pumps (fallback dispatch) live as
                // long as the server does.
                Ok(c) => held.push(c),
                Err(_) => continue, // a failed negotiation is that client's problem
            }
        }
        drop(held);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Msg, Op, Resp, Status};
    use bertha::conn::ChunnelConnection;
    use bertha::ChunnelConnector;
    use bertha_shard::worker::{frame_data, strip_data};
    use bertha_transport::udp::UdpConnector;

    #[tokio::test]
    async fn shards_serve_kv_requests_directly() {
        let shards = spawn_shards(2).await.unwrap();
        let client = UdpConnector.connect(shards[0].addr.clone()).await.unwrap();

        let put = Msg {
            id: 1,
            op: Op::Put,
            key: "k".into(),
            val: Some(b"v".to_vec()),
        };
        client
            .send((shards[0].addr.clone(), frame_data(&put.encode()).into()))
            .await
            .unwrap();
        let (_, frame) = client.recv().await.unwrap();
        let resp = Resp::decode(strip_data(&frame).unwrap()).unwrap();
        assert_eq!((resp.id, resp.status), (1, Status::Ok));
        assert_eq!(shards[0].store.len(), 1);
        assert_eq!(shards[1].store.len(), 0);
    }
}

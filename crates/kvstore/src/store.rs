//! The store and the shard worker's request handler.

use crate::msg::{Msg, Op, Resp, Status};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One shard's data: an ordered map (ordered so YCSB workload E's scans
/// have something to scan).
#[derive(Default)]
pub struct Store {
    map: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Arc<Self> {
        Arc::new(Store::default())
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True when no keys are present.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }

    /// Execute one operation.
    pub fn apply(&self, msg: &Msg) -> Resp {
        let mut map = self.map.lock();
        let (status, val) = match &msg.op {
            Op::Get => match map.get(&msg.key) {
                Some(v) => (Status::Ok, Some(v.clone())),
                None => (Status::NotFound, None),
            },
            Op::Put => match &msg.val {
                Some(v) => {
                    map.insert(msg.key.clone(), v.clone());
                    (Status::Ok, None)
                }
                None => (Status::Bad, None),
            },
            Op::Delete => match map.remove(&msg.key) {
                Some(_) => (Status::Ok, None),
                None => (Status::NotFound, None),
            },
            Op::Scan { count } => {
                let rows: Vec<(String, Vec<u8>)> = map
                    .range(msg.key.clone()..)
                    .take(*count as usize)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                let encoded = bincode::serialize(&rows).expect("rows serialize");
                (Status::Ok, Some(encoded))
            }
            Op::Rmw => match map.get_mut(&msg.key) {
                Some(v) => {
                    v.push(0x01);
                    (Status::Ok, Some(v.clone()))
                }
                None => (Status::NotFound, None),
            },
        };
        Resp {
            id: msg.id,
            status,
            val,
        }
    }

    /// The shard worker handler: decode, apply, encode. Malformed requests
    /// get a `Bad` response when the id is readable, and are dropped
    /// otherwise.
    pub fn handle_payload(&self, payload: Vec<u8>) -> Option<Vec<u8>> {
        match Msg::decode(&payload) {
            Ok(msg) => Some(self.apply(&msg).encode()),
            Err(_) if payload.len() >= 8 => {
                let id = u64::from_le_bytes(payload[..8].try_into().unwrap());
                Some(
                    Resp {
                        id,
                        status: Status::Bad,
                        val: None,
                    }
                    .encode(),
                )
            }
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(store: &Store, key: &str, val: &[u8]) -> Resp {
        store.apply(&Msg {
            id: 1,
            op: Op::Put,
            key: key.into(),
            val: Some(val.to_vec()),
        })
    }

    fn get(store: &Store, key: &str) -> Resp {
        store.apply(&Msg {
            id: 2,
            op: Op::Get,
            key: key.into(),
            val: None,
        })
    }

    #[test]
    fn put_get_delete() {
        let s = Store::new();
        assert_eq!(get(&s, "a").status, Status::NotFound);
        assert_eq!(put(&s, "a", b"1").status, Status::Ok);
        let r = get(&s, "a");
        assert_eq!(r.status, Status::Ok);
        assert_eq!(r.val.unwrap(), b"1");
        let d = s.apply(&Msg {
            id: 3,
            op: Op::Delete,
            key: "a".into(),
            val: None,
        });
        assert_eq!(d.status, Status::Ok);
        assert_eq!(get(&s, "a").status, Status::NotFound);
    }

    #[test]
    fn put_without_value_is_bad() {
        let s = Store::new();
        let r = s.apply(&Msg {
            id: 1,
            op: Op::Put,
            key: "k".into(),
            val: None,
        });
        assert_eq!(r.status, Status::Bad);
    }

    #[test]
    fn scan_returns_ordered_range() {
        let s = Store::new();
        for k in ["b", "a", "d", "c", "e"] {
            put(&s, k, k.as_bytes());
        }
        let r = s.apply(&Msg {
            id: 4,
            op: Op::Scan { count: 3 },
            key: "b".into(),
            val: None,
        });
        let rows: Vec<(String, Vec<u8>)> = bincode::deserialize(&r.val.unwrap()).unwrap();
        let keys: Vec<&str> = rows.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["b", "c", "d"]);
    }

    #[test]
    fn rmw_appends() {
        let s = Store::new();
        put(&s, "k", b"v");
        let r = s.apply(&Msg {
            id: 5,
            op: Op::Rmw,
            key: "k".into(),
            val: None,
        });
        assert_eq!(r.status, Status::Ok);
        assert_eq!(r.val.unwrap().len(), 2);
        assert_eq!(get(&s, "k").val.unwrap().len(), 2);
    }

    #[test]
    fn handler_round_trip_and_malformed() {
        let s = Store::new();
        let wire = Msg {
            id: 10,
            op: Op::Put,
            key: "x".into(),
            val: Some(vec![7]),
        }
        .encode();
        let reply = s.handle_payload(wire).unwrap();
        assert_eq!(Resp::decode(&reply).unwrap().status, Status::Ok);

        // Malformed but with a readable id: Bad response with that id.
        let mut bad = vec![0u8; 20];
        bad[..8].copy_from_slice(&99u64.to_le_bytes());
        let reply = s.handle_payload(bad).unwrap();
        let r = Resp::decode(&reply).unwrap();
        assert_eq!((r.id, r.status), (99, Status::Bad));

        // Too short for even an id: dropped.
        assert!(s.handle_payload(vec![1, 2]).is_none());
    }
}

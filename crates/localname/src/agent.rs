//! The per-host name agent: canonical address → local fast-path address.

use bertha::conn::{BoxFut, ChunnelConnection};
use bertha::{Addr, ChunnelConnector, ChunnelListener, ConnStream, Error};
use bertha_transport::uds::{UdsConnector, UdsListener};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Something that can resolve a canonical address to a host-local one.
pub trait NameSource: Send + Sync {
    /// The local address serving `canonical` on this host, if any.
    fn resolve<'a>(&'a self, canonical: &'a Addr) -> BoxFut<'a, Result<Option<Addr>, Error>>;
}

/// The in-process name agent: a table of canonical → local mappings.
#[derive(Default)]
pub struct NameAgent {
    map: RwLock<HashMap<Addr, Addr>>,
}

impl NameAgent {
    /// An empty agent.
    pub fn new() -> Self {
        NameAgent::default()
    }

    /// Record that `canonical` is served locally at `local`.
    pub fn register_local(&self, canonical: Addr, local: Addr) {
        self.map.write().insert(canonical, local);
    }

    /// Remove a mapping; returns whether it existed.
    pub fn unregister(&self, canonical: &Addr) -> bool {
        self.map.write().remove(canonical).is_some()
    }

    /// Synchronous resolution.
    pub fn resolve_sync(&self, canonical: &Addr) -> Option<Addr> {
        self.map.read().get(canonical).cloned()
    }

    /// Number of registered mappings.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if no mappings are registered.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

impl NameSource for NameAgent {
    fn resolve<'a>(&'a self, canonical: &'a Addr) -> BoxFut<'a, Result<Option<Addr>, Error>> {
        Box::pin(async move { Ok(self.resolve_sync(canonical)) })
    }
}

/// The process-wide agent instance, standing in for the per-host agent in
/// single-process experiments.
pub fn global_agent() -> &'static NameAgent {
    static AGENT: OnceLock<NameAgent> = OnceLock::new();
    AGENT.get_or_init(NameAgent::default)
}

/// Wire requests for the agent served over a Unix socket.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum AgentRequest {
    /// Resolve a canonical address.
    Resolve(Addr),
    /// Register a local mapping.
    Register {
        /// The canonical address.
        canonical: Addr,
        /// The host-local address serving it.
        local: Addr,
    },
    /// Remove a mapping.
    Unregister(Addr),
}

/// Wire responses from the agent.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum AgentResponse {
    /// Resolution result.
    Resolved(Option<Addr>),
    /// Mutation acknowledged.
    Ok,
}

/// Serve `agent` on a Unix socket at `path`.
pub async fn serve_agent_uds(
    agent: Arc<NameAgent>,
    path: std::path::PathBuf,
) -> Result<tokio::task::JoinHandle<()>, Error> {
    let mut listener = UdsListener::default();
    let mut incoming = listener.listen(Addr::Unix(path)).await?;
    Ok(tokio::spawn(async move {
        while let Some(conn) = incoming.next().await {
            let conn = match conn {
                Ok(c) => c,
                Err(_) => continue,
            };
            let agent = Arc::clone(&agent);
            tokio::spawn(async move {
                loop {
                    let (from, buf) = match conn.recv().await {
                        Ok(d) => d,
                        Err(_) => return,
                    };
                    let resp = match bincode::deserialize::<AgentRequest>(&buf) {
                        Ok(AgentRequest::Resolve(a)) => {
                            AgentResponse::Resolved(agent.resolve_sync(&a))
                        }
                        Ok(AgentRequest::Register { canonical, local }) => {
                            agent.register_local(canonical, local);
                            AgentResponse::Ok
                        }
                        Ok(AgentRequest::Unregister(a)) => {
                            agent.unregister(&a);
                            AgentResponse::Ok
                        }
                        Err(_) => return,
                    };
                    let Ok(body) = bincode::serialize(&resp) else {
                        return;
                    };
                    if conn.send((from, body.into())).await.is_err() {
                        return;
                    }
                }
            });
        }
    }))
}

/// A [`NameSource`] that queries an agent over its Unix socket: each
/// resolution is one real IPC round trip, as in the paper's setup.
pub struct RemoteNameAgent {
    agent: Addr,
    conn: tokio::sync::Mutex<Option<bertha_transport::uds::UdsConn>>,
}

impl RemoteNameAgent {
    /// Use the agent at `path`.
    pub fn new(path: std::path::PathBuf) -> Self {
        RemoteNameAgent {
            agent: Addr::Unix(path),
            conn: tokio::sync::Mutex::new(None),
        }
    }

    async fn request(&self, req: &AgentRequest) -> Result<AgentResponse, Error> {
        let mut guard = self.conn.lock().await;
        if guard.is_none() {
            *guard = Some(UdsConnector.connect(self.agent.clone()).await?);
        }
        let conn = guard.as_ref().expect("just connected");
        conn.send((self.agent.clone(), bincode::serialize(req)?.into()))
            .await?;
        let (_, buf) = tokio::time::timeout(std::time::Duration::from_secs(5), conn.recv())
            .await
            .map_err(|_| Error::Timeout {
                after: std::time::Duration::from_secs(5),
                what: "name agent reply",
            })??;
        Ok(bincode::deserialize(&buf)?)
    }

    /// Register a mapping through the socket.
    pub async fn register_local(&self, canonical: Addr, local: Addr) -> Result<(), Error> {
        self.request(&AgentRequest::Register { canonical, local })
            .await
            .map(|_| ())
    }
}

impl NameSource for RemoteNameAgent {
    fn resolve<'a>(&'a self, canonical: &'a Addr) -> BoxFut<'a, Result<Option<Addr>, Error>> {
        Box::pin(async move {
            match self
                .request(&AgentRequest::Resolve(canonical.clone()))
                .await?
            {
                AgentResponse::Resolved(r) => Ok(r),
                AgentResponse::Ok => Err(Error::Other("unexpected agent response".into())),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canonical() -> Addr {
        Addr::Udp("10.1.2.3:5000".parse().unwrap())
    }

    #[test]
    fn register_resolve_unregister() {
        let agent = NameAgent::new();
        assert!(agent.resolve_sync(&canonical()).is_none());
        let local = Addr::Unix("/tmp/x.sock".into());
        agent.register_local(canonical(), local.clone());
        assert_eq!(agent.resolve_sync(&canonical()), Some(local));
        assert!(agent.unregister(&canonical()));
        assert!(!agent.unregister(&canonical()));
        assert!(agent.is_empty());
    }

    #[tokio::test]
    async fn remote_agent_over_uds() {
        let agent = Arc::new(NameAgent::new());
        let path = std::env::temp_dir().join(format!(
            "bertha-agent-{}-{}.sock",
            std::process::id(),
            line!()
        ));
        let server = serve_agent_uds(Arc::clone(&agent), path.clone())
            .await
            .unwrap();

        let remote = RemoteNameAgent::new(path);
        assert_eq!(remote.resolve(&canonical()).await.unwrap(), None);

        let local = Addr::Unix("/tmp/srv.sock".into());
        remote
            .register_local(canonical(), local.clone())
            .await
            .unwrap();
        assert_eq!(remote.resolve(&canonical()).await.unwrap(), Some(local));
        assert_eq!(agent.len(), 1, "mutations land in the shared agent");
        server.abort();
    }
}

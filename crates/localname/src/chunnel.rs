//! The `local_or_remote()` connector and listener (Listing 1).
//!
//! The connector resolves the canonical address through the name agent on
//! **every** `connect`: same-host servers get a Unix-socket connection,
//! remote ones a UDP connection, and a server that appears locally mid-run
//! is picked up by the next connection with no configuration (Figure 4).
//!
//! The returned connection rewrites the canonical address to the resolved
//! one on `send` and back on `recv`, so the application (and everything
//! stacked above, including negotiation) keeps addressing the canonical
//! address — the fast path is transparent, as a chunnel must be (§2).

use crate::agent::{global_agent, NameSource};
use bertha::conn::{BoxFut, ChunnelConnection, Datagram};
use bertha::either::Either;
use bertha::{Addr, ChunnelConnector, ChunnelListener, ConnStream, Error};
use bertha_transport::udp::{UdpConn, UdpConnector, UdpIncoming, UdpListener, UdpPeerConn};
use bertha_transport::uds::{UdsConn, UdsConnector, UdsIncoming, UdsListener, UdsPeerConn};
use std::path::PathBuf;
use std::sync::Arc;

/// Derive the Unix-socket path a local instance of `canonical` listens on.
/// Deterministic, so the connector and listener agree without the agent
/// (though the agent mapping is authoritative).
pub fn local_path_for(canonical: &Addr) -> PathBuf {
    let mut name = canonical.to_string();
    name.retain(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-');
    std::env::temp_dir().join(format!("bertha-local-{name}.sock"))
}

/// The client half of `local_or_remote()` (Listing 1).
pub struct LocalOrRemote {
    agent: Arc<dyn NameSource>,
}

impl LocalOrRemote {
    /// Resolve through a specific name source.
    pub fn with_agent(agent: Arc<dyn NameSource>) -> Self {
        LocalOrRemote { agent }
    }
}

/// `local_or_remote()` resolving through the process-global agent.
pub fn local_or_remote() -> LocalOrRemote {
    LocalOrRemote {
        agent: Arc::new(GlobalAgentSource),
    }
}

struct GlobalAgentSource;

impl NameSource for GlobalAgentSource {
    fn resolve<'a>(&'a self, canonical: &'a Addr) -> BoxFut<'a, Result<Option<Addr>, Error>> {
        global_agent().resolve(canonical)
    }
}

impl ChunnelConnector for LocalOrRemote {
    type Addr = Addr;
    type Connection = LocalOrRemoteConn;

    fn connect(&mut self, canonical: Addr) -> BoxFut<'static, Result<Self::Connection, Error>> {
        let agent = Arc::clone(&self.agent);
        Box::pin(async move {
            let resolved = agent.resolve(&canonical).await?;
            match resolved {
                Some(local @ Addr::Unix(_)) => {
                    let conn = UdsConnector.connect(local.clone()).await?;
                    Ok(LocalOrRemoteConn {
                        inner: Either::Left(conn),
                        canonical,
                        resolved: local,
                    })
                }
                // No local instance (or a non-UDS mapping): regular UDP.
                _ => {
                    let conn = UdpConnector.connect(canonical.clone()).await?;
                    Ok(LocalOrRemoteConn {
                        inner: Either::Right(conn),
                        canonical: canonical.clone(),
                        resolved: canonical,
                    })
                }
            }
        })
    }
}

/// Connection produced by [`LocalOrRemote`]: addresses stay canonical.
pub struct LocalOrRemoteConn {
    inner: Either<UdsConn, UdpConn>,
    canonical: Addr,
    resolved: Addr,
}

impl LocalOrRemoteConn {
    /// True if this connection took the Unix-socket fast path.
    pub fn is_local(&self) -> bool {
        self.inner.is_left()
    }
}

impl ChunnelConnection for LocalOrRemoteConn {
    type Data = Datagram;

    fn send(&self, (addr, buf): Datagram) -> BoxFut<'_, Result<(), Error>> {
        let addr = if addr == self.canonical {
            self.resolved.clone()
        } else {
            addr
        };
        self.inner.send((addr, buf))
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            let (from, buf) = self.inner.recv().await?;
            // Traffic from the resolved address is, logically, from the
            // canonical one.
            let from = if from == self.resolved || matches!(from, Addr::Unix(_)) {
                self.canonical.clone()
            } else {
                from
            };
            Ok((from, buf))
        })
    }
}

/// The server half: listens on the canonical UDP address *and* a derived
/// Unix socket, and registers the mapping with the agent so local clients
/// take the fast path.
#[derive(Default)]
pub struct LocalOrRemoteListener {
    agent: Option<Arc<crate::agent::NameAgent>>,
}

impl LocalOrRemoteListener {
    /// Register with the process-global agent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register with a specific in-process agent.
    pub fn with_agent(agent: Arc<crate::agent::NameAgent>) -> Self {
        LocalOrRemoteListener { agent: Some(agent) }
    }
}

impl ChunnelListener for LocalOrRemoteListener {
    type Addr = Addr;
    type Connection = Either<UdpPeerConn, UdsPeerConn>;
    type Stream = LocalOrRemoteIncoming;

    fn listen(&mut self, canonical: Addr) -> BoxFut<'static, Result<Self::Stream, Error>> {
        let agent: Arc<dyn Fn(Addr, Addr) + Send + Sync> = {
            let agent = self.agent.clone();
            Arc::new(move |c, l| match &agent {
                Some(a) => a.register_local(c, l),
                None => global_agent().register_local(c, l),
            })
        };
        let unregister: Arc<dyn Fn(&Addr) + Send + Sync> = {
            let agent = self.agent.clone();
            Arc::new(move |c| {
                match &agent {
                    Some(a) => a.unregister(c),
                    None => global_agent().unregister(c),
                };
            })
        };
        Box::pin(async move {
            let udp = UdpListener::default().listen(canonical.clone()).await?;
            // The kernel may have picked the port (ephemeral listen): the
            // canonical address for registration is the bound one.
            let canonical = udp.local_addr();
            let path = local_path_for(&canonical);
            let uds = UdsListener::default()
                .listen(Addr::Unix(path.clone()))
                .await?;
            agent(canonical.clone(), Addr::Unix(path));
            Ok(LocalOrRemoteIncoming {
                udp,
                uds,
                canonical,
                unregister,
            })
        })
    }
}

/// Stream of connections arriving on either the UDP address or the local
/// fast path. Unregisters the agent mapping when dropped.
pub struct LocalOrRemoteIncoming {
    udp: UdpIncoming,
    uds: UdsIncoming,
    canonical: Addr,
    unregister: Arc<dyn Fn(&Addr) + Send + Sync>,
}

impl LocalOrRemoteIncoming {
    /// The canonical (UDP) address this listener serves.
    pub fn local_addr(&self) -> Addr {
        self.canonical.clone()
    }
}

impl Drop for LocalOrRemoteIncoming {
    fn drop(&mut self) {
        (self.unregister)(&self.canonical);
    }
}

impl ConnStream for LocalOrRemoteIncoming {
    type Connection = Either<UdpPeerConn, UdsPeerConn>;

    fn next(&mut self) -> BoxFut<'_, Option<Result<Self::Connection, Error>>> {
        Box::pin(async move {
            let udp = self.udp.next();
            let uds = self.uds.next();
            tokio::select! {
                c = udp => c.map(|r| r.map(Either::Left)),
                c = uds => c.map(|r| r.map(Either::Right)),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::NameAgent;

    /// End to end: a remote-looking client goes over UDP; after the local
    /// listener registers, new connections take the Unix fast path.
    #[tokio::test]
    async fn picks_fast_path_when_registered() {
        let agent = Arc::new(NameAgent::new());
        let mut listener = LocalOrRemoteListener::with_agent(Arc::clone(&agent));
        let mut incoming = listener
            .listen(Addr::Udp("127.0.0.1:0".parse().unwrap()))
            .await
            .unwrap();
        let canonical = incoming.local_addr();

        let mut connector = LocalOrRemote::with_agent(agent.clone() as Arc<dyn NameSource>);
        let conn = connector.connect(canonical.clone()).await.unwrap();
        assert!(conn.is_local(), "agent has the mapping: fast path");

        conn.send((canonical.clone(), b"via uds".into()))
            .await
            .unwrap();
        let server_conn = incoming.next().await.unwrap().unwrap();
        assert!(matches!(server_conn, Either::Right(_)), "arrived on uds");
        let (from, data) = server_conn.recv().await.unwrap();
        assert_eq!(data, b"via uds");
        server_conn.send((from, b"reply".into())).await.unwrap();
        let (from, data) = conn.recv().await.unwrap();
        assert_eq!(data, b"reply");
        assert_eq!(from, canonical, "sources are canonicalized");
    }

    #[tokio::test]
    async fn falls_back_to_udp_without_mapping() {
        // A separate, empty agent: the connector cannot see the listener's
        // registration, as if client and server were on different hosts.
        let empty = Arc::new(NameAgent::new());
        let server_agent = Arc::new(NameAgent::new());
        let mut listener = LocalOrRemoteListener::with_agent(server_agent);
        let mut incoming = listener
            .listen(Addr::Udp("127.0.0.1:0".parse().unwrap()))
            .await
            .unwrap();
        let canonical = incoming.local_addr();

        let mut connector = LocalOrRemote::with_agent(empty as Arc<dyn NameSource>);
        let conn = connector.connect(canonical.clone()).await.unwrap();
        assert!(!conn.is_local());
        conn.send((canonical.clone(), b"via udp".into()))
            .await
            .unwrap();
        let server_conn = incoming.next().await.unwrap().unwrap();
        assert!(matches!(server_conn, Either::Left(_)), "arrived on udp");
        let (_, data) = server_conn.recv().await.unwrap();
        assert_eq!(data, b"via udp");
    }

    /// The Figure 4 scenario: connections before a local instance exists
    /// use UDP; after it appears, new connections switch to the fast path.
    #[tokio::test]
    async fn reresolution_discovers_new_local_instance() {
        let agent = Arc::new(NameAgent::new());
        // "Remote" server: plain UDP listener, no local registration.
        let mut remote_incoming = UdpListener::default()
            .listen(Addr::Udp("127.0.0.1:0".parse().unwrap()))
            .await
            .unwrap();
        let canonical = remote_incoming.local_addr();

        let mut connector = LocalOrRemote::with_agent(agent.clone() as Arc<dyn NameSource>);
        let c1 = connector.connect(canonical.clone()).await.unwrap();
        assert!(!c1.is_local());
        // Exercise the UDP path so the remote listener is demonstrably live.
        c1.send((canonical.clone(), b"hi".into())).await.unwrap();
        let rc = remote_incoming.next().await.unwrap().unwrap();
        let (_, d) = rc.recv().await.unwrap();
        assert_eq!(d, b"hi");

        // A local instance starts (t = 4s in Figure 4): the *next*
        // connection takes the fast path; the established one is unchanged.
        let path = local_path_for(&canonical);
        let _local_uds = UdsListener::default()
            .listen(Addr::Unix(path.clone()))
            .await
            .unwrap();
        agent.register_local(canonical.clone(), Addr::Unix(path));

        let c2 = connector.connect(canonical.clone()).await.unwrap();
        assert!(c2.is_local());
        assert!(!c1.is_local());
    }
}

//! Local fast-path subsystem (Listing 1, §3.2, Figures 3–4).
//!
//! "Prior work has shown that sending messages between containers can add
//! significant overheads since all data between two containers must
//! traverse the host network stack ... the `local_or_remote` Chunnel uses
//! fast IPC calls when transferring data between containers on the same
//! node and datagrams otherwise."
//!
//! The pieces:
//!
//! - [`agent`]: the per-host name agent mapping a canonical (UDP) address
//!   to a local Unix-socket path when a server instance runs on this host.
//!   Usable in-process or over a Unix socket (one IPC round trip per
//!   resolution — half of §5's "two additional IPC round trips").
//! - [`chunnel`]: the `local_or_remote()` connector/listener pair. The
//!   listener binds both the UDP address and a Unix socket and registers
//!   the mapping; the connector re-resolves **on every connection**, which
//!   is what lets Figure 4's client discover a local replica that appears
//!   later, with no configuration change.

#![warn(missing_docs)]

pub mod agent;
pub mod chunnel;

pub use agent::{global_agent, NameAgent, NameSource, RemoteNameAgent};
pub use chunnel::{local_or_remote, LocalOrRemote, LocalOrRemoteConn, LocalOrRemoteListener};

//! Fault injection for datagram connections.
//!
//! Wraps any byte-level connection and injects drops, duplicates,
//! reordering, corruption, and delay on the send path — and drops,
//! duplicates, and corruption on the receive path — driven by a seeded
//! RNG for reproducibility. Modeled on smoltcp's example fault injectors
//! (`--drop-chance`, `--corrupt-chance`, ...); used by the test suite to
//! validate that the reliability and ordering chunnels restore
//! exactly-once in-order delivery over an adversarial transport.
//!
//! For chaos tests that must fail a link *mid-run* (the renegotiation
//! fallback path), [`FaultChunnel::controlled`] returns a [`FaultHandle`]
//! whose blackhole switch silently discards all traffic in both
//! directions until cleared — the closest software analogue to yanking a
//! cable or killing an offload engine.

use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain};
use bertha::{Chunnel, Error};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fault probabilities and parameters. All probabilities in `[0, 1]`.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Probability a datagram is silently dropped.
    pub drop: f64,
    /// Probability a datagram is delivered twice.
    pub duplicate: f64,
    /// Probability a datagram is held back and sent after the next one.
    pub reorder: f64,
    /// Probability one byte of the payload is flipped.
    pub corrupt: f64,
    /// Fixed extra delay applied to every datagram.
    pub delay: Duration,
    /// How long a reorder-held datagram waits before being flushed even
    /// if no later datagram displaces it. A network delays packets, it
    /// does not hold them hostage: without this bound, a held final
    /// datagram would simply never arrive.
    pub reorder_hold: Duration,
    /// Probability an *incoming* datagram is silently dropped.
    pub recv_drop: f64,
    /// Probability an *incoming* datagram is delivered twice.
    pub recv_duplicate: f64,
    /// Probability one byte of an *incoming* payload is flipped.
    pub recv_corrupt: f64,
    /// RNG seed, for reproducible tests.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            delay: Duration::ZERO,
            reorder_hold: Duration::from_millis(5),
            recv_drop: 0.0,
            recv_duplicate: 0.0,
            recv_corrupt: 0.0,
            seed: 0x6265_7274_6861,
        }
    }
}

impl FaultConfig {
    /// A lossy network: 15% drops (smoltcp's suggested starting point).
    pub fn lossy() -> Self {
        FaultConfig {
            drop: 0.15,
            ..Default::default()
        }
    }

    /// An adversarial network: drops, duplicates, and reordering at once.
    pub fn adversarial(seed: u64) -> Self {
        FaultConfig {
            drop: 0.1,
            duplicate: 0.1,
            reorder: 0.1,
            seed,
            ..Default::default()
        }
    }
}

/// Runtime control over a [`FaultChunnel`]'s connections.
///
/// Obtained from [`FaultChunnel::controlled`]; shared by every connection
/// the chunnel wraps. Currently a single switch: the blackhole.
#[derive(Debug, Default)]
pub struct FaultHandle {
    blackhole: AtomicBool,
}

impl FaultHandle {
    /// When set, all traffic in both directions is silently discarded, as
    /// if the link (or the offload engine implementing it) died. Clear to
    /// restore the configured fault behavior.
    pub fn set_blackhole(&self, on: bool) {
        self.blackhole.store(on, Ordering::Relaxed);
    }

    /// Whether the blackhole is currently engaged.
    pub fn is_blackhole(&self) -> bool {
        self.blackhole.load(Ordering::Relaxed)
    }
}

/// A chunnel that injects faults below whatever is stacked above it.
#[derive(Clone, Debug, Default)]
pub struct FaultChunnel {
    cfg: FaultConfig,
    handle: Option<Arc<FaultHandle>>,
}

impl FaultChunnel {
    /// Inject faults per `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultChunnel { cfg, handle: None }
    }

    /// Inject faults per `cfg`, with a shared [`FaultHandle`] for flipping
    /// the link into (and out of) a blackhole at runtime.
    pub fn controlled(cfg: FaultConfig) -> (Self, Arc<FaultHandle>) {
        let handle = Arc::new(FaultHandle::default());
        (
            FaultChunnel {
                cfg,
                handle: Some(Arc::clone(&handle)),
            },
            handle,
        )
    }
}

impl<InC> Chunnel<InC> for FaultChunnel
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Connection = FaultConn<InC>;

    fn connect_wrap(&self, inner: InC) -> BoxFut<'static, Result<Self::Connection, Error>> {
        let cfg = self.cfg;
        let handle = self.handle.clone();
        Box::pin(async move { Ok(FaultConn::new(inner, cfg, handle)) })
    }
}

/// Connection produced by [`FaultChunnel`].
pub struct FaultConn<C> {
    inner: Arc<C>,
    cfg: FaultConfig,
    handle: Option<Arc<FaultHandle>>,
    state: Arc<Mutex<FaultState>>,
}

struct FaultState {
    rng: StdRng,
    held: Option<(u64, Datagram)>,
    hold_gen: u64,
    /// Receive-side duplicates waiting to be delivered on the next `recv`.
    recv_pending: VecDeque<Datagram>,
    dropped: u64,
    duplicated: u64,
    reordered: u64,
    corrupted: u64,
}

impl<C> FaultConn<C> {
    fn new(inner: C, cfg: FaultConfig, handle: Option<Arc<FaultHandle>>) -> Self {
        FaultConn {
            inner: Arc::new(inner),
            cfg,
            handle,
            state: Arc::new(Mutex::new(FaultState {
                rng: StdRng::seed_from_u64(cfg.seed),
                held: None,
                hold_gen: 0,
                recv_pending: VecDeque::new(),
                dropped: 0,
                duplicated: 0,
                reordered: 0,
                corrupted: 0,
            })),
        }
    }

    /// (drops, duplicates, reorders, corruptions) injected so far, summed
    /// over both directions.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        let s = self.state.lock();
        (s.dropped, s.duplicated, s.reordered, s.corrupted)
    }

    fn blackholed(&self) -> bool {
        self.handle.as_ref().is_some_and(|h| h.is_blackhole())
    }
}

impl<C> ChunnelConnection for FaultConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Data = Datagram;

    fn send(&self, (addr, mut buf): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            if self.blackholed() {
                self.state.lock().dropped += 1;
                return Ok(());
            }
            // Decide this datagram's fate under the lock, then do async
            // sends without it.
            let (fate, flush_held) = {
                let mut st = self.state.lock();
                if st.rng.gen::<f64>() < self.cfg.drop {
                    st.dropped += 1;
                    (Fate::Drop, None)
                } else {
                    if st.rng.gen::<f64>() < self.cfg.corrupt && !buf.is_empty() {
                        let i = st.rng.gen_range(0..buf.len());
                        if let Some(b) = buf.get_mut(i) {
                            *b ^= 0x01;
                        }
                        st.corrupted += 1;
                    }
                    if st.rng.gen::<f64>() < self.cfg.reorder && st.held.is_none() {
                        st.reordered += 1;
                        st.hold_gen += 1;
                        let gen = st.hold_gen;
                        // check: allow(alloc): refcount bump — the held frame aliases the original
                        st.held = Some((gen, (addr.clone(), buf.clone())));
                        (Fate::Hold(gen), None)
                    } else {
                        let dup = st.rng.gen::<f64>() < self.cfg.duplicate;
                        if dup {
                            st.duplicated += 1;
                        }
                        (
                            if dup { Fate::SendTwice } else { Fate::Send },
                            st.held.take().map(|(_, d)| d),
                        )
                    }
                }
            };

            if !self.cfg.delay.is_zero() {
                tokio::time::sleep(self.cfg.delay).await;
            }

            match fate {
                Fate::Drop => {}
                Fate::Hold(gen) => {
                    // Bound the hold: if nothing displaces the held
                    // datagram, flush it after reorder_hold.
                    let inner = Arc::clone(&self.inner);
                    let state = Arc::clone(&self.state);
                    let hold = self.cfg.reorder_hold;
                    tokio::spawn(async move {
                        tokio::time::sleep(hold).await;
                        let taken = {
                            let mut st = state.lock();
                            match &st.held {
                                Some((g, _)) if *g == gen => st.held.take().map(|(_, d)| d),
                                _ => None,
                            }
                        };
                        if let Some(d) = taken {
                            let _ = inner.send(d).await;
                        }
                    });
                }
                Fate::Send => {
                    // check: allow(alloc): refcount bump; fault injection resends the same slab
                    self.inner.send((addr.clone(), buf.clone())).await?;
                }
                Fate::SendTwice => {
                    // check: allow(alloc): refcount bump for deliberate duplication
                    self.inner.send((addr.clone(), buf.clone())).await?;
                    // check: allow(alloc): second copy of the duplicated send
                    self.inner.send((addr.clone(), buf.clone())).await?;
                }
            }
            // A held (reordered) datagram goes out after the current one.
            if let Some(held) = flush_held {
                self.inner.send(held).await?;
            }
            Ok(())
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            loop {
                let queued = self.state.lock().recv_pending.pop_front();
                if let Some(d) = queued {
                    return Ok(d);
                }
                let (from, mut buf) = self.inner.recv().await?;
                if self.blackholed() {
                    self.state.lock().dropped += 1;
                    continue;
                }
                let deliver = {
                    let mut st = self.state.lock();
                    if st.rng.gen::<f64>() < self.cfg.recv_drop {
                        st.dropped += 1;
                        false
                    } else {
                        if st.rng.gen::<f64>() < self.cfg.recv_corrupt && !buf.is_empty() {
                            let i = st.rng.gen_range(0..buf.len());
                            if let Some(b) = buf.get_mut(i) {
                                *b ^= 0x01;
                            }
                            st.corrupted += 1;
                        }
                        if st.rng.gen::<f64>() < self.cfg.recv_duplicate {
                            st.duplicated += 1;
                            // check: allow(alloc): refcount bump for deliberate duplication
                            st.recv_pending.push_back((from.clone(), buf.clone()));
                        }
                        true
                    }
                };
                if deliver {
                    return Ok((from, buf));
                }
            }
        })
    }
}

/// Faults are instantaneous: nothing (other than an at-most-one-datagram
/// reorder hold, which is bounded by `reorder_hold` on its own) is queued
/// on the send path, so draining is the inner layer's concern.
impl<C> Drain for FaultConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Drain + Send + Sync + 'static,
{
    fn drain(&self) -> BoxFut<'_, Result<(), Error>> {
        self.inner.drain()
    }
}

enum Fate {
    Drop,
    Hold(u64),
    Send,
    SendTwice,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha::conn::pair;

    #[tokio::test]
    async fn no_faults_is_transparent() {
        let (a, b) = pair::<Datagram>(64);
        let conn = FaultChunnel::default().connect_wrap(a).await.unwrap();
        let addr = bertha::Addr::Mem("x".into());
        for i in 0..10u8 {
            conn.send((addr.clone(), vec![i].into())).await.unwrap();
        }
        for i in 0..10u8 {
            let (_, d) = b.recv().await.unwrap();
            assert_eq!(d, vec![i]);
        }
        assert_eq!(conn.stats(), (0, 0, 0, 0));
    }

    #[tokio::test]
    async fn drops_are_injected() {
        let (a, b) = pair::<Datagram>(2048);
        let cfg = FaultConfig {
            drop: 0.5,
            seed: 42,
            ..Default::default()
        };
        let conn = FaultChunnel::new(cfg).connect_wrap(a).await.unwrap();
        let addr = bertha::Addr::Mem("x".into());
        for i in 0..200u8 {
            conn.send((addr.clone(), vec![i].into())).await.unwrap();
        }
        let (dropped, ..) = conn.stats();
        assert!(dropped > 50 && dropped < 150, "dropped {dropped} of 200");
        drop(conn);
        let mut received = 0;
        while let Ok((_, _)) = b.recv().await {
            received += 1;
        }
        assert_eq!(received as u64, 200 - dropped);
    }

    #[tokio::test]
    async fn duplicates_are_injected() {
        let (a, b) = pair::<Datagram>(2048);
        let cfg = FaultConfig {
            duplicate: 1.0,
            seed: 7,
            ..Default::default()
        };
        let conn = FaultChunnel::new(cfg).connect_wrap(a).await.unwrap();
        let addr = bertha::Addr::Mem("x".into());
        conn.send((addr, vec![9].into())).await.unwrap();
        let (_, d1) = b.recv().await.unwrap();
        let (_, d2) = b.recv().await.unwrap();
        assert_eq!(d1, d2);
    }

    #[tokio::test]
    async fn reorder_swaps_adjacent() {
        let (a, b) = pair::<Datagram>(64);
        let cfg = FaultConfig {
            reorder: 1.0,
            seed: 3,
            ..Default::default()
        };
        let conn = FaultChunnel::new(cfg).connect_wrap(a).await.unwrap();
        let addr = bertha::Addr::Mem("x".into());
        conn.send((addr.clone(), vec![1].into())).await.unwrap();
        conn.send((addr.clone(), vec![2].into())).await.unwrap();
        // With reorder=1.0 the first is held; the second send flushes...
        // but the second is also held-eligible — only one slot exists, so
        // the second goes out first, then the first.
        let (_, d1) = b.recv().await.unwrap();
        let (_, d2) = b.recv().await.unwrap();
        assert_eq!(d1, vec![2]);
        assert_eq!(d2, vec![1]);
    }

    #[tokio::test]
    async fn corruption_flips_one_byte() {
        let (a, b) = pair::<Datagram>(64);
        let cfg = FaultConfig {
            corrupt: 1.0,
            seed: 5,
            ..Default::default()
        };
        let conn = FaultChunnel::new(cfg).connect_wrap(a).await.unwrap();
        let addr = bertha::Addr::Mem("x".into());
        conn.send((addr, vec![0u8; 16].into())).await.unwrap();
        let (_, d) = b.recv().await.unwrap();
        assert_eq!(d.iter().filter(|&&x| x != 0).count(), 1);
    }

    #[tokio::test]
    async fn recv_drops_are_injected() {
        let (a, b) = pair::<Datagram>(2048);
        let cfg = FaultConfig {
            recv_drop: 0.5,
            seed: 21,
            ..Default::default()
        };
        let conn = FaultChunnel::new(cfg).connect_wrap(b).await.unwrap();
        let addr = bertha::Addr::Mem("x".into());
        for i in 0..200u8 {
            a.send((addr.clone(), vec![i].into())).await.unwrap();
        }
        drop(a);
        let mut received = 0u64;
        while conn.recv().await.is_ok() {
            received += 1;
        }
        let (dropped, ..) = conn.stats();
        assert!(dropped > 50 && dropped < 150, "dropped {dropped} of 200");
        assert_eq!(received, 200 - dropped);
    }

    #[tokio::test]
    async fn recv_duplicates_are_injected() {
        let (a, b) = pair::<Datagram>(64);
        let cfg = FaultConfig {
            recv_duplicate: 1.0,
            seed: 8,
            ..Default::default()
        };
        let conn = FaultChunnel::new(cfg).connect_wrap(b).await.unwrap();
        let addr = bertha::Addr::Mem("x".into());
        a.send((addr, vec![3].into())).await.unwrap();
        let (_, d1) = conn.recv().await.unwrap();
        let (_, d2) = conn.recv().await.unwrap();
        assert_eq!(d1, d2);
    }

    #[tokio::test]
    async fn recv_corruption_flips_one_byte() {
        let (a, b) = pair::<Datagram>(64);
        let cfg = FaultConfig {
            recv_corrupt: 1.0,
            seed: 11,
            ..Default::default()
        };
        let conn = FaultChunnel::new(cfg).connect_wrap(b).await.unwrap();
        let addr = bertha::Addr::Mem("x".into());
        a.send((addr, vec![0u8; 16].into())).await.unwrap();
        let (_, d) = conn.recv().await.unwrap();
        assert_eq!(d.iter().filter(|&&x| x != 0).count(), 1);
    }

    #[tokio::test]
    async fn blackhole_cuts_both_directions_until_cleared() {
        let (a, b) = pair::<Datagram>(64);
        let (fc, handle) = FaultChunnel::controlled(Default::default());
        let conn = fc.connect_wrap(a).await.unwrap();
        let addr = bertha::Addr::Mem("x".into());

        conn.send((addr.clone(), vec![1].into())).await.unwrap();
        let (_, d) = b.recv().await.unwrap();
        assert_eq!(d, vec![1]);

        handle.set_blackhole(true);
        // Outgoing traffic vanishes...
        conn.send((addr.clone(), vec![2].into())).await.unwrap();
        // ...and incoming traffic is swallowed by recv.
        b.send((addr.clone(), vec![3].into())).await.unwrap();
        let starved = tokio::time::timeout(Duration::from_millis(50), conn.recv()).await;
        assert!(starved.is_err(), "blackholed recv must deliver nothing");

        handle.set_blackhole(false);
        conn.send((addr.clone(), vec![4].into())).await.unwrap();
        let (_, d) = b.recv().await.unwrap();
        assert_eq!(d, vec![4], "the blackholed send must not resurface");
        let (dropped, ..) = conn.stats();
        assert_eq!(dropped, 2, "one send-side and one recv-side discard");
    }

    #[test]
    fn same_seed_same_fate() {
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(r1.gen::<f64>().to_bits(), r2.gen::<f64>().to_bits());
        }
    }
}

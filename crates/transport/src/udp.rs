//! UDP transport: the paper prototype's base ("bincode ... atop UDP RPCs",
//! §5).
//!
//! The connector binds an ephemeral socket per connection. The listener
//! binds one socket and demultiplexes incoming datagrams by source address
//! into per-peer connections; all per-peer connections share the socket for
//! sending.

use bertha::chunnel::{ConnStream, RecvStream};
use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain};
use bertha::{Addr, ChunnelConnector, ChunnelListener, Error};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::sync::mpsc;

/// The local address to bind for talking to `remote`: same address family,
/// loopback-scoped when the remote is loopback.
pub(crate) fn local_bind_for(remote: SocketAddr) -> SocketAddr {
    match (remote.is_ipv4(), remote.ip().is_loopback()) {
        (true, true) => (std::net::Ipv4Addr::LOCALHOST, 0).into(),
        (true, false) => (std::net::Ipv4Addr::UNSPECIFIED, 0).into(),
        (false, true) => (std::net::Ipv6Addr::LOCALHOST, 0).into(),
        (false, false) => (std::net::Ipv6Addr::UNSPECIFIED, 0).into(),
    }
}

fn expect_udp(addr: &Addr) -> Result<SocketAddr, Error> {
    match addr {
        Addr::Udp(sa) => Ok(*sa),
        other => Err(Error::Other(format!("udp transport cannot reach {other}"))),
    }
}

/// Client-side UDP transport. Each `connect` binds a fresh ephemeral port.
#[derive(Clone, Copy, Debug, Default)]
pub struct UdpConnector;

impl ChunnelConnector for UdpConnector {
    type Addr = Addr;
    type Connection = UdpConn;

    fn connect(&mut self, addr: Addr) -> BoxFut<'static, Result<UdpConn, Error>> {
        Box::pin(async move {
            let remote = expect_udp(&addr)?;
            let socket = UdpSocket::bind(local_bind_for(remote)).await?;
            Ok(UdpConn {
                socket: Arc::new(socket),
            })
        })
    }
}

/// An unconnected UDP socket as a Bertha connection: sends go to the
/// address in each datagram, receives report the source.
pub struct UdpConn {
    socket: Arc<UdpSocket>,
}

impl UdpConn {
    /// The local address this connection is bound to.
    pub fn local_addr(&self) -> Result<Addr, Error> {
        Ok(Addr::Udp(self.socket.local_addr()?))
    }
}

impl ChunnelConnection for UdpConn {
    type Data = Datagram;

    fn send(&self, (addr, buf): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            if buf.len() > crate::MAX_DATAGRAM {
                return Err(Error::Other(format!(
                    "datagram of {} bytes exceeds the {}-byte UDP limit",
                    buf.len(),
                    crate::MAX_DATAGRAM
                )));
            }
            let sa = expect_udp(&addr)?;
            self.socket.send_to(&buf, sa).await?;
            Ok(())
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            let mut buf = vec![0u8; crate::MAX_DATAGRAM];
            let (n, from) = self.socket.recv_from(&mut buf).await?;
            buf.truncate(n);
            Ok((Addr::Udp(from), buf))
        })
    }
}

/// Server-side UDP transport: binds one socket, yields a connection per
/// remote peer.
#[derive(Clone, Copy, Debug, Default)]
pub struct UdpListener {
    /// Queue depth per peer before the demux drops datagrams (UDP
    /// semantics: overload looks like loss, not backpressure).
    pub per_peer_queue: usize,
}

impl UdpListener {
    /// Listener with the given per-peer queue depth (0 means default: 512).
    pub fn new(per_peer_queue: usize) -> Self {
        UdpListener { per_peer_queue }
    }
}

impl ChunnelListener for UdpListener {
    type Addr = Addr;
    type Connection = UdpPeerConn;
    type Stream = UdpIncoming;

    fn listen(&mut self, addr: Addr) -> BoxFut<'static, Result<Self::Stream, Error>> {
        let queue = if self.per_peer_queue == 0 {
            512
        } else {
            self.per_peer_queue
        };
        Box::pin(async move {
            let sa = expect_udp(&addr)?;
            let socket = Arc::new(UdpSocket::bind(sa).await?);
            let local = socket.local_addr()?;
            let (accept_tx, accept_rx) = mpsc::channel(64);
            tokio::spawn(demux(socket, accept_tx, queue));
            Ok(UdpIncoming {
                inner: RecvStream::new(accept_rx),
                local,
            })
        })
    }
}

/// The stream of incoming per-peer UDP connections. Knows the bound local
/// address, which matters when listening on an ephemeral port.
pub struct UdpIncoming {
    inner: RecvStream<UdpPeerConn>,
    local: SocketAddr,
}

impl UdpIncoming {
    /// The address the listening socket is bound to.
    pub fn local_addr(&self) -> Addr {
        Addr::Udp(self.local)
    }
}

impl ConnStream for UdpIncoming {
    type Connection = UdpPeerConn;

    fn next(&mut self) -> BoxFut<'_, Option<Result<UdpPeerConn, Error>>> {
        self.inner.next()
    }
}

/// The demultiplexed flow from one remote peer on a listening socket.
pub struct UdpPeerConn {
    socket: Arc<UdpSocket>,
    peer: SocketAddr,
    inbox: tokio::sync::Mutex<mpsc::Receiver<Vec<u8>>>,
}

impl UdpPeerConn {
    /// The remote peer this connection receives from.
    pub fn peer(&self) -> Addr {
        Addr::Udp(self.peer)
    }

    /// The local address of the shared listening socket.
    pub fn local_addr(&self) -> Result<Addr, Error> {
        Ok(Addr::Udp(self.socket.local_addr()?))
    }
}

impl ChunnelConnection for UdpPeerConn {
    type Data = Datagram;

    fn send(&self, (addr, buf): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            if buf.len() > crate::MAX_DATAGRAM {
                return Err(Error::Other(format!(
                    "datagram of {} bytes exceeds the {}-byte UDP limit",
                    buf.len(),
                    crate::MAX_DATAGRAM
                )));
            }
            // Replies usually go to the peer, but the address is honored so
            // chunnels (e.g. sharding steer) can redirect.
            let sa = expect_udp(&addr)?;
            self.socket.send_to(&buf, sa).await?;
            Ok(())
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            let mut inbox = self.inbox.lock().await;
            match inbox.recv().await {
                Some(buf) => Ok((Addr::Udp(self.peer), buf)),
                None => Err(Error::ConnectionClosed),
            }
        })
    }
}

async fn demux(
    socket: Arc<UdpSocket>,
    accept_tx: mpsc::Sender<Result<UdpPeerConn, Error>>,
    queue: usize,
) {
    let mut peers: HashMap<SocketAddr, mpsc::Sender<Vec<u8>>> = HashMap::new();
    let mut buf = vec![0u8; crate::MAX_DATAGRAM];
    loop {
        let (n, from) = match socket.recv_from(&mut buf).await {
            Ok(r) => r,
            Err(_) => return,
        };
        // `recv_from` never reports more bytes than the buffer holds; on
        // the absurd case, an empty payload beats a data-path panic.
        let payload = buf.get(..n).unwrap_or_default().to_vec();

        // Drop state for peers whose connection was dropped; a later
        // datagram from the same peer starts a fresh connection.
        if peers.get(&from).map(|tx| tx.is_closed()).unwrap_or(false) {
            peers.remove(&from);
        }

        match peers.get(&from) {
            Some(tx) => {
                // Full queue: drop, like a UDP socket buffer.
                let _ = tx.try_send(payload);
            }
            None => {
                if accept_tx.is_closed() {
                    // Nobody is accepting; if no live peers remain either,
                    // the listener is fully abandoned.
                    if peers.values().all(|tx| tx.is_closed()) {
                        return;
                    }
                    continue;
                }
                let (tx, rx) = mpsc::channel(queue);
                let _ = tx.try_send(payload);
                let conn = UdpPeerConn {
                    socket: Arc::clone(&socket),
                    peer: from,
                    inbox: tokio::sync::Mutex::new(rx),
                };
                peers.insert(from, tx);
                // Never block the demux on the accept queue: every
                // established connection's traffic funnels through this
                // loop, so a stalled accept consumer must cost only the
                // *new* peer (whose handshake retry will re-create it),
                // not everyone.
                if accept_tx.try_send(Ok(conn)).is_err() {
                    peers.remove(&from);
                }
            }
        }
    }
}

/// Bind an unconnected UDP socket as a standalone [`UdpConn`] — useful for
/// fixed-address endpoints like shard sockets.
pub async fn bind_udp(addr: &Addr) -> Result<UdpConn, Error> {
    let sa = expect_udp(addr)?;
    let socket = UdpSocket::bind(sa).await?;
    Ok(UdpConn {
        socket: Arc::new(socket),
    })
}

/// Base transports hand datagrams straight to the kernel (or channel);
/// nothing is buffered, so there is nothing to drain.
impl Drain for UdpConn {}

/// Base transports hand datagrams straight to the kernel (or channel);
/// nothing is buffered, so there is nothing to drain.
impl Drain for UdpPeerConn {}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback() -> Addr {
        Addr::Udp("127.0.0.1:0".parse().unwrap())
    }

    async fn bound_listener() -> (Addr, UdpIncoming) {
        let stream = UdpListener::default().listen(loopback()).await.unwrap();
        let addr = stream.local_addr();
        (addr, stream)
    }

    #[tokio::test]
    async fn round_trip() {
        let (addr, mut stream) = bound_listener().await;
        let client = UdpConnector.connect(addr.clone()).await.unwrap();
        client
            .send((addr.clone(), b"hello".to_vec()))
            .await
            .unwrap();

        let server_conn = stream.next().await.unwrap().unwrap();
        let (from, data) = server_conn.recv().await.unwrap();
        assert_eq!(data, b"hello");
        server_conn.send((from, b"world".to_vec())).await.unwrap();
        let (_, data) = client.recv().await.unwrap();
        assert_eq!(data, b"world");
    }

    #[tokio::test]
    async fn demux_separates_peers() {
        let (addr, mut stream) = bound_listener().await;
        let c1 = UdpConnector.connect(addr.clone()).await.unwrap();
        let c2 = UdpConnector.connect(addr.clone()).await.unwrap();
        c1.send((addr.clone(), b"one".to_vec())).await.unwrap();
        let s1 = stream.next().await.unwrap().unwrap();
        c2.send((addr.clone(), b"two".to_vec())).await.unwrap();
        let s2 = stream.next().await.unwrap().unwrap();

        let (_, d1) = s1.recv().await.unwrap();
        let (_, d2) = s2.recv().await.unwrap();
        assert_eq!(d1, b"one");
        assert_eq!(d2, b"two");
        assert_ne!(s1.peer(), s2.peer());
    }

    #[tokio::test]
    async fn oversized_datagram_rejected() {
        let (addr, _stream) = bound_listener().await;
        let conn = UdpConnector.connect(addr.clone()).await.unwrap();
        let big = vec![0u8; crate::MAX_DATAGRAM + 1];
        assert!(conn.send((addr, big)).await.is_err());
    }

    #[tokio::test]
    async fn connector_matches_remote_address_family() {
        // IPv6 loopback remote must get an IPv6 socket (an AF_INET socket
        // cannot send to ::1).
        let v6: SocketAddr = "[::1]:9".parse().unwrap();
        assert!(local_bind_for(v6).is_ipv6());
        assert!(local_bind_for(v6).ip().is_loopback());
        let v4: SocketAddr = "127.0.0.1:9".parse().unwrap();
        assert!(local_bind_for(v4).is_ipv4());
        let v6g: SocketAddr = "[2001:db8::1]:9".parse().unwrap();
        assert!(local_bind_for(v6g).is_ipv6());
        // End to end over the v6 loopback when the host supports it.
        if let Ok(l) = UdpSocket::bind("[::1]:0").await {
            let srv_addr = Addr::Udp(l.local_addr().unwrap());
            let conn = UdpConnector.connect(srv_addr.clone()).await.unwrap();
            conn.send((srv_addr, b"v6".to_vec())).await.unwrap();
            let mut buf = [0u8; 8];
            let (n, _) = l.recv_from(&mut buf).await.unwrap();
            assert_eq!(&buf[..n], b"v6");
        }
    }

    #[tokio::test]
    async fn connect_to_non_udp_addr_fails() {
        assert!(UdpConnector.connect(Addr::Mem("x".into())).await.is_err());
        let _ = loopback();
    }
}

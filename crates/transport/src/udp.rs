//! UDP transport: the paper prototype's base ("bincode ... atop UDP RPCs",
//! §5).
//!
//! The connector binds an ephemeral socket per connection. The listener
//! binds one socket and demultiplexes incoming datagrams by source address
//! into per-peer connections; all per-peer connections share the socket for
//! sending.
//!
//! # Batched syscalls
//!
//! On Linux the send path coalesces concurrently-queued frames into one
//! `sendmmsg(2)` call and the receive path drains the socket with
//! `recvmmsg(2)` into pool-leased [`Frame`]s (DESIGN.md §12). Every sender
//! pushes its frame onto a shared queue and then takes a drainer lock;
//! whoever holds the lock flushes the whole queue, so frames queued while a
//! flush is in flight ride along in the next batch instead of paying their
//! own syscall. `BERTHA_UDP_BATCH=0` disables batching at runtime; other
//! platforms always use the per-packet fallback. Both paths move the same
//! bytes, so the fallback differs only in syscall count.

use bertha::buf::Frame;
use bertha::chunnel::{ConnStream, RecvStream};
use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain};
use bertha::{Addr, ChunnelConnector, ChunnelListener, Error};
use bertha_telemetry as tele;
use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::sync::mpsc;

/// Most frames one `sendmmsg` call flushes; queued excess goes in the next
/// iteration of the same drain.
const SEND_BATCH: usize = 32;

/// The local address to bind for talking to `remote`: same address family,
/// loopback-scoped when the remote is loopback.
pub(crate) fn local_bind_for(remote: SocketAddr) -> SocketAddr {
    match (remote.is_ipv4(), remote.ip().is_loopback()) {
        (true, true) => (std::net::Ipv4Addr::LOCALHOST, 0).into(),
        (true, false) => (std::net::Ipv4Addr::UNSPECIFIED, 0).into(),
        (false, true) => (std::net::Ipv6Addr::LOCALHOST, 0).into(),
        (false, false) => (std::net::Ipv6Addr::UNSPECIFIED, 0).into(),
    }
}

fn expect_udp(addr: &Addr) -> Result<SocketAddr, Error> {
    match addr {
        Addr::Udp(sa) => Ok(*sa),
        other => Err(Error::Other(format!("udp transport cannot reach {other}"))),
    }
}

/// Whether batched syscalls are in play: Linux only, and the
/// `BERTHA_UDP_BATCH=0` kill-switch wins. Read once; flipping the variable
/// mid-process has no effect.
fn batching() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        cfg!(target_os = "linux")
            && std::env::var("BERTHA_UDP_BATCH").map_or(true, |v| v != "0")
    })
}

/// Shared send side of one UDP socket: a queue of outbound frames plus the
/// drainer lock that serializes flushes.
///
/// The contract is that `send` returns only after a point at which the
/// queue was empty *after* its own push — either this task drained it, or
/// the drainer it waited on did. Send errors are reported to whichever
/// task performed the failing flush, which (as with any batched UDP send)
/// may not be the task that queued the frame.
struct SendQueue {
    queue: parking_lot::Mutex<VecDeque<(SocketAddr, Frame)>>,
    drainer: tokio::sync::Mutex<()>,
}

impl SendQueue {
    fn new() -> Arc<Self> {
        Arc::new(SendQueue {
            queue: parking_lot::Mutex::new(VecDeque::new()),
            drainer: tokio::sync::Mutex::new(()),
        })
    }

    async fn send(&self, socket: &UdpSocket, sa: SocketAddr, frame: Frame) -> Result<(), Error> {
        if frame.len() > crate::MAX_DATAGRAM {
            return Err(Error::Other(format!(
                "datagram of {} bytes exceeds the {}-byte UDP limit",
                frame.len(),
                crate::MAX_DATAGRAM
            )));
        }
        if !batching() {
            socket.send_to(&frame, sa).await?;
            return Ok(());
        }
        self.queue.lock().push_back((sa, frame));
        let _flush = self.drainer.lock().await;
        self.drain(socket).await
    }

    /// Flush the queue until it is observed empty. Caller holds `drainer`.
    async fn drain(&self, socket: &UdpSocket) -> Result<(), Error> {
        loop {
            let batch: Vec<(SocketAddr, Frame)> = {
                let mut q = self.queue.lock();
                if q.is_empty() {
                    return Ok(());
                }
                let n = q.len().min(SEND_BATCH);
                q.drain(..n).collect()
            };
            send_batch(socket, &batch).await?;
        }
    }
}

/// Put one batch on the wire. One `sendmmsg` per iteration on Linux;
/// per-packet otherwise (the kill-switch is checked before queueing, so
/// reaching here on Linux means batching is on).
#[cfg(target_os = "linux")]
async fn send_batch(socket: &UdpSocket, batch: &[(SocketAddr, Frame)]) -> Result<(), Error> {
    use tokio::io::Interest;
    let mut done = 0;
    while done < batch.len() {
        socket.ready(Interest::WRITABLE).await?;
        // check: allow(panic): loop condition keeps done < batch.len()
        match socket.try_io(Interest::WRITABLE, || mmsg::send(socket, &batch[done..])) {
            Ok(n) => {
                tele::counter("udp.batch.sends").incr();
                tele::histogram("udp.batch.send_frames").record(n as u64);
                done += n.max(1);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

#[cfg(not(target_os = "linux"))]
async fn send_batch(socket: &UdpSocket, batch: &[(SocketAddr, Frame)]) -> Result<(), Error> {
    for (sa, frame) in batch {
        socket.send_to(frame, *sa).await?;
    }
    Ok(())
}

/// Receive at least one datagram, opportunistically draining up to a
/// batch in one `recvmmsg` call on Linux. Frames come from the buffer
/// pool with headroom intact, so upstream chunnels prepend in place.
async fn recv_some(socket: &UdpSocket) -> Result<Vec<(SocketAddr, Frame)>, Error> {
    #[cfg(target_os = "linux")]
    if batching() {
        use tokio::io::Interest;
        loop {
            socket.ready(Interest::READABLE).await?;
            match socket.try_io(Interest::READABLE, || mmsg::recv(socket)) {
                Ok(msgs) => {
                    tele::counter("udp.batch.recvs").incr();
                    tele::histogram("udp.batch.recv_frames").record(msgs.len() as u64);
                    return Ok(msgs);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }
    let mut frame = Frame::recv_lease(crate::MAX_DATAGRAM);
    let Some(window) = frame.payload_mut() else {
        // A fresh lease is always unique; treat the impossible as I/O loss.
        return Err(Error::Other("recv lease not writable".into()));
    };
    let (n, from) = socket.recv_from(window).await?;
    frame.truncate(n);
    Ok(vec![(from, frame)])
}

/// Raw `sendmmsg`/`recvmmsg` plumbing. Declared by hand against the libc
/// ABI so the crate stays dependency-free; Linux-only by construction.
#[cfg(target_os = "linux")]
mod mmsg {
    use super::Frame;
    use std::io;
    use std::net::{IpAddr, SocketAddr};
    use std::os::fd::AsRawFd;
    use tokio::net::UdpSocket;

    /// Frames drained per `recvmmsg` call. Each slot leases a pool buffer;
    /// unused slots go straight back to the pool.
    const RECV_BATCH: usize = 16;

    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;
    const MSG_DONTWAIT: i32 = 0x40;

    #[repr(C)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    #[repr(C)]
    struct MsgHdr {
        name: *mut u8,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    #[repr(C)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    extern "C" {
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn recvmmsg(
            fd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut u8,
        ) -> i32;
    }

    /// Large enough for `sockaddr_in6`; `sockaddr_in` uses a prefix.
    type SockAddrBuf = [u8; 28];

    fn encode_addr(sa: SocketAddr, buf: &mut SockAddrBuf) -> u32 {
        match sa.ip() {
            IpAddr::V4(ip) => {
                // check: allow(panic): constant ranges into the fixed 28-byte sockaddr buffer
                buf[..2].copy_from_slice(&AF_INET.to_ne_bytes());
                // check: allow(panic): constant ranges into the fixed 28-byte sockaddr buffer
                buf[2..4].copy_from_slice(&sa.port().to_be_bytes());
                // check: allow(panic): constant ranges into the fixed 28-byte sockaddr buffer
                buf[4..8].copy_from_slice(&ip.octets());
                16
            }
            IpAddr::V6(ip) => {
                // check: allow(panic): constant ranges into the fixed 28-byte sockaddr buffer
                buf[..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                // check: allow(panic): constant ranges into the fixed 28-byte sockaddr buffer
                buf[2..4].copy_from_slice(&sa.port().to_be_bytes());
                // check: allow(panic): constant ranges into the fixed 28-byte sockaddr buffer
                buf[4..8].fill(0); // flowinfo
                // check: allow(panic): constant ranges into the fixed 28-byte sockaddr buffer
                buf[8..24].copy_from_slice(&ip.octets());
                // check: allow(panic): constant ranges into the fixed 28-byte sockaddr buffer
                buf[24..28].fill(0); // scope id: loopback/global both 0
                28
            }
        }
    }

    fn decode_addr(buf: &SockAddrBuf) -> Option<SocketAddr> {
        // check: allow(panic): constant indices into the fixed 28-byte sockaddr buffer
        let family = u16::from_ne_bytes([buf[0], buf[1]]);
        // check: allow(panic): constant indices into the fixed 28-byte sockaddr buffer
        let port = u16::from_be_bytes([buf[2], buf[3]]);
        match family {
            AF_INET => {
                // check: allow(panic): constant range into the fixed 28-byte sockaddr buffer
                let ip: [u8; 4] = buf[4..8].try_into().ok()?;
                Some((IpAddr::from(ip), port).into())
            }
            AF_INET6 => {
                // check: allow(panic): constant range into the fixed 28-byte sockaddr buffer
                let ip: [u8; 16] = buf[8..24].try_into().ok()?;
                Some((IpAddr::from(ip), port).into())
            }
            _ => None,
        }
    }

    /// One non-blocking `sendmmsg`; returns how many leading frames of
    /// `batch` hit the wire.
    pub(super) fn send(socket: &UdpSocket, batch: &[(SocketAddr, Frame)]) -> io::Result<usize> {
        let n = batch.len().min(super::SEND_BATCH);
        let mut addrs: Vec<(SockAddrBuf, u32)> = Vec::with_capacity(n);
        let mut iovs: Vec<IoVec> = Vec::with_capacity(n);
        for (sa, frame) in batch.iter().take(n) {
            let mut buf = [0u8; 28];
            let namelen = encode_addr(*sa, &mut buf);
            addrs.push((buf, namelen));
            iovs.push(IoVec {
                // sendmmsg never writes through the iov; the cast only
                // satisfies the C signature.
                base: frame.as_ref().as_ptr() as *mut u8,
                len: frame.len(),
            });
        }
        // Pointers into `addrs`/`iovs` stay valid: both vecs are fully
        // built above and never grow again.
        let mut hdrs: Vec<MMsgHdr> = Vec::with_capacity(n);
        for i in 0..n {
            hdrs.push(MMsgHdr {
                hdr: MsgHdr {
                    // check: allow(panic): i < n == every parallel vec's length
                    name: addrs[i].0.as_mut_ptr(),
                    // check: allow(panic): i < n == every parallel vec's length
                    namelen: addrs[i].1,
                    // check: allow(panic): i < n == every parallel vec's length
                    iov: &mut iovs[i],
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            });
        }
        let rc = unsafe { sendmmsg(socket.as_raw_fd(), hdrs.as_mut_ptr(), n as u32, MSG_DONTWAIT) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(rc as usize)
    }

    /// One non-blocking `recvmmsg` into pool-leased frames.
    pub(super) fn recv(socket: &UdpSocket) -> io::Result<Vec<(SocketAddr, Frame)>> {
        let mut frames: Vec<Frame> = (0..RECV_BATCH)
            .map(|_| Frame::recv_lease(crate::MAX_DATAGRAM))
            .collect();
        let mut addrs: Vec<SockAddrBuf> = vec![[0u8; 28]; RECV_BATCH];
        let mut iovs: Vec<IoVec> = Vec::with_capacity(RECV_BATCH);
        for frame in frames.iter_mut() {
            let Some(window) = frame.payload_mut() else {
                return Err(io::Error::new(
                    io::ErrorKind::Other,
                    "recv lease not writable",
                ));
            };
            iovs.push(IoVec {
                base: window.as_mut_ptr(),
                len: window.len(),
            });
        }
        // Pointers into `addrs`/`iovs` stay valid: both vecs are fully
        // built above and never grow again.
        let mut hdrs: Vec<MMsgHdr> = Vec::with_capacity(RECV_BATCH);
        for i in 0..RECV_BATCH {
            hdrs.push(MMsgHdr {
                hdr: MsgHdr {
                    // check: allow(panic): parallel vecs are RECV_BATCH long
                    name: addrs[i].as_mut_ptr(),
                    namelen: 28,
                    // check: allow(panic): parallel vecs are RECV_BATCH long
                    iov: &mut iovs[i],
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            });
        }
        let rc = unsafe {
            recvmmsg(
                socket.as_raw_fd(),
                hdrs.as_mut_ptr(),
                RECV_BATCH as u32,
                MSG_DONTWAIT,
                std::ptr::null_mut(),
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        let got = rc as usize;
        let mut out = Vec::with_capacity(got);
        for (i, mut frame) in frames.into_iter().enumerate().take(got) {
            // check: allow(panic): kernel reported got <= RECV_BATCH filled entries
            frame.truncate(hdrs[i].len as usize);
            // A datagram whose source address the kernel could not report
            // in a known family is unroutable upstream; drop it like loss.
            // check: allow(panic): kernel reported got <= RECV_BATCH filled entries
            if let Some(from) = decode_addr(&addrs[i]) {
                out.push((from, frame));
            }
        }
        Ok(out)
    }
}

/// Client-side UDP transport. Each `connect` binds a fresh ephemeral port.
#[derive(Clone, Copy, Debug, Default)]
pub struct UdpConnector;

impl ChunnelConnector for UdpConnector {
    type Addr = Addr;
    type Connection = UdpConn;

    fn connect(&mut self, addr: Addr) -> BoxFut<'static, Result<UdpConn, Error>> {
        Box::pin(async move {
            let remote = expect_udp(&addr)?;
            let socket = UdpSocket::bind(local_bind_for(remote)).await?;
            Ok(UdpConn::from_socket(socket))
        })
    }
}

/// An unconnected UDP socket as a Bertha connection: sends go to the
/// address in each datagram, receives report the source.
pub struct UdpConn {
    socket: Arc<UdpSocket>,
    outbox: Arc<SendQueue>,
    /// Datagrams a batched recv drained beyond the one returned.
    inbox: parking_lot::Mutex<VecDeque<(SocketAddr, Frame)>>,
}

impl UdpConn {
    fn from_socket(socket: UdpSocket) -> Self {
        UdpConn {
            socket: Arc::new(socket),
            outbox: SendQueue::new(),
            inbox: parking_lot::Mutex::new(VecDeque::new()),
        }
    }

    /// The local address this connection is bound to.
    pub fn local_addr(&self) -> Result<Addr, Error> {
        Ok(Addr::Udp(self.socket.local_addr()?))
    }
}

impl ChunnelConnection for UdpConn {
    type Data = Datagram;

    fn send(&self, (addr, buf): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            let sa = expect_udp(&addr)?;
            self.outbox.send(&self.socket, sa, buf).await
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            loop {
                if let Some((from, frame)) = self.inbox.lock().pop_front() {
                    return Ok((Addr::Udp(from), frame));
                }
                let msgs = recv_some(&self.socket).await?;
                self.inbox.lock().extend(msgs);
            }
        })
    }
}

/// Server-side UDP transport: binds one socket, yields a connection per
/// remote peer.
#[derive(Clone, Copy, Debug, Default)]
pub struct UdpListener {
    /// Queue depth per peer before the demux drops datagrams (UDP
    /// semantics: overload looks like loss, not backpressure).
    pub per_peer_queue: usize,
}

impl UdpListener {
    /// Listener with the given per-peer queue depth (0 means default: 512).
    pub fn new(per_peer_queue: usize) -> Self {
        UdpListener { per_peer_queue }
    }
}

impl ChunnelListener for UdpListener {
    type Addr = Addr;
    type Connection = UdpPeerConn;
    type Stream = UdpIncoming;

    fn listen(&mut self, addr: Addr) -> BoxFut<'static, Result<Self::Stream, Error>> {
        let queue = if self.per_peer_queue == 0 {
            512
        } else {
            self.per_peer_queue
        };
        Box::pin(async move {
            let sa = expect_udp(&addr)?;
            let socket = Arc::new(UdpSocket::bind(sa).await?);
            let local = socket.local_addr()?;
            let (accept_tx, accept_rx) = mpsc::channel(64);
            tokio::spawn(demux(socket, accept_tx, queue));
            Ok(UdpIncoming {
                inner: RecvStream::new(accept_rx),
                local,
            })
        })
    }
}

/// The stream of incoming per-peer UDP connections. Knows the bound local
/// address, which matters when listening on an ephemeral port.
pub struct UdpIncoming {
    inner: RecvStream<UdpPeerConn>,
    local: SocketAddr,
}

impl UdpIncoming {
    /// The address the listening socket is bound to.
    pub fn local_addr(&self) -> Addr {
        Addr::Udp(self.local)
    }
}

impl ConnStream for UdpIncoming {
    type Connection = UdpPeerConn;

    fn next(&mut self) -> BoxFut<'_, Option<Result<UdpPeerConn, Error>>> {
        self.inner.next()
    }
}

/// The demultiplexed flow from one remote peer on a listening socket.
pub struct UdpPeerConn {
    socket: Arc<UdpSocket>,
    peer: SocketAddr,
    /// Shared with every peer conn on this socket, so concurrent replies
    /// to different peers coalesce into the same `sendmmsg` batches.
    outbox: Arc<SendQueue>,
    inbox: tokio::sync::Mutex<mpsc::Receiver<Frame>>,
}

impl UdpPeerConn {
    /// The remote peer this connection receives from.
    pub fn peer(&self) -> Addr {
        Addr::Udp(self.peer)
    }

    /// The local address of the shared listening socket.
    pub fn local_addr(&self) -> Result<Addr, Error> {
        Ok(Addr::Udp(self.socket.local_addr()?))
    }
}

impl ChunnelConnection for UdpPeerConn {
    type Data = Datagram;

    fn send(&self, (addr, buf): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            // Replies usually go to the peer, but the address is honored so
            // chunnels (e.g. sharding steer) can redirect.
            let sa = expect_udp(&addr)?;
            self.outbox.send(&self.socket, sa, buf).await
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            let mut inbox = self.inbox.lock().await;
            match inbox.recv().await {
                Some(frame) => Ok((Addr::Udp(self.peer), frame)),
                None => Err(Error::ConnectionClosed),
            }
        })
    }
}

async fn demux(
    socket: Arc<UdpSocket>,
    accept_tx: mpsc::Sender<Result<UdpPeerConn, Error>>,
    queue: usize,
) {
    let outbox = SendQueue::new();
    let mut peers: HashMap<SocketAddr, mpsc::Sender<Frame>> = HashMap::new();
    loop {
        let msgs = match recv_some(&socket).await {
            Ok(msgs) => msgs,
            Err(_) => return,
        };
        for (from, frame) in msgs {
            // Drop state for peers whose connection was dropped; a later
            // datagram from the same peer starts a fresh connection.
            if peers.get(&from).map(|tx| tx.is_closed()).unwrap_or(false) {
                peers.remove(&from);
            }

            match peers.get(&from) {
                Some(tx) => {
                    // Full queue: drop, like a UDP socket buffer.
                    let _ = tx.try_send(frame);
                }
                None => {
                    if accept_tx.is_closed() {
                        // Nobody is accepting; if no live peers remain
                        // either, the listener is fully abandoned.
                        if peers.values().all(|tx| tx.is_closed()) {
                            return;
                        }
                        continue;
                    }
                    let (tx, rx) = mpsc::channel(queue);
                    let _ = tx.try_send(frame);
                    let conn = UdpPeerConn {
                        socket: Arc::clone(&socket),
                        peer: from,
                        outbox: Arc::clone(&outbox),
                        inbox: tokio::sync::Mutex::new(rx),
                    };
                    peers.insert(from, tx);
                    // Never block the demux on the accept queue: every
                    // established connection's traffic funnels through this
                    // loop, so a stalled accept consumer must cost only the
                    // *new* peer (whose handshake retry will re-create it),
                    // not everyone.
                    if accept_tx.try_send(Ok(conn)).is_err() {
                        peers.remove(&from);
                    }
                }
            }
        }
    }
}

/// Bind an unconnected UDP socket as a standalone [`UdpConn`] — useful for
/// fixed-address endpoints like shard sockets.
pub async fn bind_udp(addr: &Addr) -> Result<UdpConn, Error> {
    let sa = expect_udp(addr)?;
    let socket = UdpSocket::bind(sa).await?;
    Ok(UdpConn::from_socket(socket))
}

/// Send resolves only after the shared queue has been observed empty, so
/// nothing this connection queued is still buffered when send returns.
impl Drain for UdpConn {}

/// Send resolves only after the shared queue has been observed empty, so
/// nothing this connection queued is still buffered when send returns.
impl Drain for UdpPeerConn {}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback() -> Addr {
        Addr::Udp("127.0.0.1:0".parse().unwrap())
    }

    async fn bound_listener() -> (Addr, UdpIncoming) {
        let stream = UdpListener::default().listen(loopback()).await.unwrap();
        let addr = stream.local_addr();
        (addr, stream)
    }

    #[tokio::test]
    async fn round_trip() {
        let (addr, mut stream) = bound_listener().await;
        let client = UdpConnector.connect(addr.clone()).await.unwrap();
        client.send((addr.clone(), b"hello".into())).await.unwrap();

        let server_conn = stream.next().await.unwrap().unwrap();
        let (from, data) = server_conn.recv().await.unwrap();
        assert_eq!(data, b"hello");
        server_conn.send((from, b"world".into())).await.unwrap();
        let (_, data) = client.recv().await.unwrap();
        assert_eq!(data, b"world");
    }

    #[tokio::test]
    async fn demux_separates_peers() {
        let (addr, mut stream) = bound_listener().await;
        let c1 = UdpConnector.connect(addr.clone()).await.unwrap();
        let c2 = UdpConnector.connect(addr.clone()).await.unwrap();
        c1.send((addr.clone(), b"one".into())).await.unwrap();
        let s1 = stream.next().await.unwrap().unwrap();
        c2.send((addr.clone(), b"two".into())).await.unwrap();
        let s2 = stream.next().await.unwrap().unwrap();

        let (_, d1) = s1.recv().await.unwrap();
        let (_, d2) = s2.recv().await.unwrap();
        assert_eq!(d1, b"one");
        assert_eq!(d2, b"two");
        assert_ne!(s1.peer(), s2.peer());
    }

    #[tokio::test]
    async fn many_datagrams_survive_batching() {
        // Enough traffic that the batched path must run several sendmmsg /
        // recvmmsg rounds; every datagram must arrive intact and in order
        // (loopback UDP preserves order within one socket pair).
        let (addr, mut stream) = bound_listener().await;
        let client = UdpConnector.connect(addr.clone()).await.unwrap();
        for i in 0..200u8 {
            client
                .send((addr.clone(), vec![i, i.wrapping_add(1)].into()))
                .await
                .unwrap();
        }
        let server_conn = stream.next().await.unwrap().unwrap();
        for i in 0..200u8 {
            let (_, data) = server_conn.recv().await.unwrap();
            assert_eq!(data, vec![i, i.wrapping_add(1)]);
        }
    }

    #[tokio::test]
    async fn oversized_datagram_rejected() {
        let (addr, _stream) = bound_listener().await;
        let conn = UdpConnector.connect(addr.clone()).await.unwrap();
        let big = vec![0u8; crate::MAX_DATAGRAM + 1];
        assert!(conn.send((addr, big.into())).await.is_err());
    }

    #[tokio::test]
    async fn connector_matches_remote_address_family() {
        // IPv6 loopback remote must get an IPv6 socket (an AF_INET socket
        // cannot send to ::1).
        let v6: SocketAddr = "[::1]:9".parse().unwrap();
        assert!(local_bind_for(v6).is_ipv6());
        assert!(local_bind_for(v6).ip().is_loopback());
        let v4: SocketAddr = "127.0.0.1:9".parse().unwrap();
        assert!(local_bind_for(v4).is_ipv4());
        let v6g: SocketAddr = "[2001:db8::1]:9".parse().unwrap();
        assert!(local_bind_for(v6g).is_ipv6());
        // End to end over the v6 loopback when the host supports it.
        if let Ok(l) = UdpSocket::bind("[::1]:0").await {
            let srv_addr = Addr::Udp(l.local_addr().unwrap());
            let conn = UdpConnector.connect(srv_addr.clone()).await.unwrap();
            conn.send((srv_addr, b"v6".into())).await.unwrap();
            let mut buf = [0u8; 8];
            let (n, _) = l.recv_from(&mut buf).await.unwrap();
            assert_eq!(&buf[..n], b"v6");
        }
    }

    #[tokio::test]
    async fn batched_recv_reports_ipv6_source() {
        // recvmmsg decodes the raw sockaddr by hand; make sure the v6
        // branch round-trips (the v4 one is exercised everywhere else).
        if let Ok(l) = UdpSocket::bind("[::1]:0").await {
            let srv = UdpConn::from_socket(l);
            let cli_sock = UdpSocket::bind("[::1]:0").await.unwrap();
            let cli_addr = cli_sock.local_addr().unwrap();
            let cli = UdpConn::from_socket(cli_sock);
            let srv_addr = srv.local_addr().unwrap();
            cli.send((srv_addr, b"six".into())).await.unwrap();
            let (from, data) = srv.recv().await.unwrap();
            assert_eq!(data, b"six");
            assert_eq!(from, Addr::Udp(cli_addr));
        }
    }

    #[tokio::test]
    async fn connect_to_non_udp_addr_fails() {
        assert!(UdpConnector.connect(Addr::Mem("x".into())).await.is_err());
        let _ = loopback();
    }
}

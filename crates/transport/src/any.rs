//! A transport-agnostic unconnected socket: binds whichever family an
//! address template belongs to. Used by infrastructure elements (shard
//! steerers, dispatchers) that must talk to peers over the same transport
//! the application chose.

use crate::mem::MemSocket;
use crate::udp::{bind_udp, UdpConn};
use crate::uds::{UdsConn, UdsConnector};
use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain};
use bertha::{Addr, ChunnelConnector, Error};

/// An unconnected socket of any supported datagram family.
pub enum AnyConn {
    /// A UDP socket.
    Udp(UdpConn),
    /// An in-memory endpoint.
    Mem(MemSocket),
    /// A Unix-domain datagram socket.
    Uds(UdsConn),
}

impl AnyConn {
    /// This socket's own address.
    pub fn local_addr(&self) -> Result<Addr, Error> {
        match self {
            AnyConn::Udp(c) => c.local_addr(),
            AnyConn::Mem(c) => Ok(c.local_addr()),
            AnyConn::Uds(c) => Ok(c.local_addr()),
        }
    }
}

/// Bind an ephemeral socket in the same family as `peer_template`, able to
/// exchange datagrams with addresses of that family.
pub async fn bind_any(peer_template: &Addr) -> Result<AnyConn, Error> {
    match peer_template {
        Addr::Udp(sa) => Ok(AnyConn::Udp(
            bind_udp(&Addr::Udp(crate::udp::local_bind_for(*sa))).await?,
        )),
        Addr::Mem(_) => Ok(AnyConn::Mem(MemSocket::bind(None)?)),
        Addr::Unix(_) => Ok(AnyConn::Uds(
            UdsConnector.connect(peer_template.clone()).await?,
        )),
        other => Err(Error::Other(format!("cannot bind a socket for {other}"))),
    }
}

impl ChunnelConnection for AnyConn {
    type Data = Datagram;

    fn send(&self, d: Datagram) -> BoxFut<'_, Result<(), Error>> {
        match self {
            AnyConn::Udp(c) => c.send(d),
            AnyConn::Mem(c) => c.send(d),
            AnyConn::Uds(c) => c.send(d),
        }
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        match self {
            AnyConn::Udp(c) => c.recv(),
            AnyConn::Mem(c) => c.recv(),
            AnyConn::Uds(c) => c.recv(),
        }
    }
}

/// Base transports hand datagrams straight to the kernel (or channel);
/// nothing is buffered, so there is nothing to drain.
impl Drain for AnyConn {}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn binds_matching_family() {
        let udp = bind_any(&Addr::Udp("127.0.0.1:9999".parse().unwrap()))
            .await
            .unwrap();
        assert!(matches!(udp.local_addr().unwrap(), Addr::Udp(_)));

        let mem = bind_any(&Addr::Mem("whatever".into())).await.unwrap();
        assert!(matches!(mem.local_addr().unwrap(), Addr::Mem(_)));

        assert!(bind_any(&Addr::Named("x".into())).await.is_err());
    }

    #[tokio::test]
    async fn mem_round_trip_via_any() {
        let a = bind_any(&Addr::Mem("t".into())).await.unwrap();
        let b = bind_any(&Addr::Mem("t".into())).await.unwrap();
        let b_addr = b.local_addr().unwrap();
        a.send((b_addr, vec![3].into())).await.unwrap();
        let (from, d) = b.recv().await.unwrap();
        assert_eq!(d, vec![3]);
        assert_eq!(from, a.local_addr().unwrap());
    }
}

//! TCP transport with 32-bit length-delimited framing.
//!
//! Bertha connections are message-oriented, so a byte stream needs framing:
//! each message is a little-endian `u32` length followed by that many bytes.
//! The per-message address is the peer's socket address (checked on send:
//! TCP cannot redirect).

use bertha::buf::Frame;
use bertha::chunnel::{ConnStream, RecvStream};
use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain};
use bertha::{Addr, ChunnelConnector, ChunnelListener, Error};
use std::net::SocketAddr;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::tcp::{OwnedReadHalf, OwnedWriteHalf};
use tokio::net::TcpStream;
use tokio::sync::{mpsc, Mutex};

/// Largest frame `recv` will accept; guards against garbage lengths.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

fn expect_tcp(addr: &Addr) -> Result<SocketAddr, Error> {
    match addr {
        Addr::Tcp(sa) => Ok(*sa),
        other => Err(Error::Other(format!("tcp transport cannot reach {other}"))),
    }
}

/// Client-side TCP transport.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpConnector {
    /// Set `TCP_NODELAY` on new connections (default true: Bertha
    /// messages are latency-sensitive RPCs).
    pub nodelay: bool,
}

impl TcpConnector {
    /// A connector with `TCP_NODELAY` enabled.
    pub fn new() -> Self {
        TcpConnector { nodelay: true }
    }
}

impl ChunnelConnector for TcpConnector {
    type Addr = Addr;
    type Connection = TcpConn;

    fn connect(&mut self, addr: Addr) -> BoxFut<'static, Result<TcpConn, Error>> {
        let nodelay = self.nodelay;
        Box::pin(async move {
            let sa = expect_tcp(&addr)?;
            let stream = TcpStream::connect(sa).await?;
            if nodelay {
                stream.set_nodelay(true)?;
            }
            Ok(TcpConn::new(stream, sa))
        })
    }
}

/// A framed TCP connection.
pub struct TcpConn {
    peer: SocketAddr,
    rd: Mutex<OwnedReadHalf>,
    wr: Mutex<OwnedWriteHalf>,
}

impl TcpConn {
    fn new(stream: TcpStream, peer: SocketAddr) -> Self {
        let (rd, wr) = stream.into_split();
        TcpConn {
            peer,
            rd: Mutex::new(rd),
            wr: Mutex::new(wr),
        }
    }

    /// The remote peer.
    pub fn peer(&self) -> Addr {
        Addr::Tcp(self.peer)
    }
}

impl ChunnelConnection for TcpConn {
    type Data = Datagram;

    fn send(&self, (addr, buf): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            let sa = expect_tcp(&addr)?;
            if sa != self.peer {
                return Err(Error::Other(format!(
                    "tcp connection to {} cannot send to {}",
                    self.peer, sa
                )));
            }
            if buf.len() > MAX_FRAME {
                return Err(Error::Other(format!(
                    "frame of {} bytes exceeds the {}-byte limit",
                    buf.len(),
                    MAX_FRAME
                )));
            }
            let mut wr = self.wr.lock().await;
            wr.write_all(&(buf.len() as u32).to_le_bytes()).await?;
            wr.write_all(&buf).await?;
            Ok(())
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            let mut rd = self.rd.lock().await;
            let mut len = [0u8; 4];
            if let Err(e) = rd.read_exact(&mut len).await {
                return match e.kind() {
                    std::io::ErrorKind::UnexpectedEof => Err(Error::ConnectionClosed),
                    _ => Err(e.into()),
                };
            }
            let len = u32::from_le_bytes(len) as usize;
            if len > MAX_FRAME {
                return Err(Error::Encode(format!("frame length {len} too large")));
            }
            // Read straight into a pool-leased frame so upstream
            // chunnels can prepend into its headroom (DESIGN.md §12).
            let mut frame = Frame::recv_lease(len);
            let window = match frame.payload_mut() {
                // check: allow(panic): guard proves w.len() >= len
                Some(w) if w.len() >= len => &mut w[..len],
                _ => return Err(Error::Other("recv lease not writable".into())),
            };
            rd.read_exact(window).await.map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => Error::ConnectionClosed,
                _ => e.into(),
            })?;
            frame.truncate(len);
            Ok((Addr::Tcp(self.peer), frame))
        })
    }
}

/// Server-side TCP transport.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpListener {
    /// Set `TCP_NODELAY` on accepted connections.
    pub nodelay: bool,
}

impl TcpListener {
    /// A listener with `TCP_NODELAY` enabled.
    pub fn new() -> Self {
        TcpListener { nodelay: true }
    }
}

impl ChunnelListener for TcpListener {
    type Addr = Addr;
    type Connection = TcpConn;
    type Stream = TcpIncoming;

    fn listen(&mut self, addr: Addr) -> BoxFut<'static, Result<Self::Stream, Error>> {
        let nodelay = self.nodelay;
        Box::pin(async move {
            let sa = expect_tcp(&addr)?;
            let listener = tokio::net::TcpListener::bind(sa).await?;
            let local = listener.local_addr()?;
            let (tx, rx) = mpsc::channel(64);
            tokio::spawn(async move {
                loop {
                    match listener.accept().await {
                        Ok((stream, peer)) => {
                            if nodelay {
                                let _ = stream.set_nodelay(true);
                            }
                            if tx.send(Ok(TcpConn::new(stream, peer))).await.is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Err(e.into())).await;
                            return;
                        }
                    }
                }
            });
            Ok(TcpIncoming {
                inner: RecvStream::new(rx),
                local,
            })
        })
    }
}

/// Stream of accepted TCP connections.
pub struct TcpIncoming {
    inner: RecvStream<TcpConn>,
    local: SocketAddr,
}

impl TcpIncoming {
    /// The bound listening address.
    pub fn local_addr(&self) -> Addr {
        Addr::Tcp(self.local)
    }
}

impl ConnStream for TcpIncoming {
    type Connection = TcpConn;

    fn next(&mut self) -> BoxFut<'_, Option<Result<TcpConn, Error>>> {
        self.inner.next()
    }
}

/// Base transports hand datagrams straight to the kernel (or channel);
/// nothing is buffered, so there is nothing to drain.
impl Drain for TcpConn {}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn framed_round_trip() {
        let mut stream = TcpListener::new()
            .listen(Addr::Tcp("127.0.0.1:0".parse().unwrap()))
            .await
            .unwrap();
        let addr = stream.local_addr();
        let client = TcpConnector::new().connect(addr.clone()).await.unwrap();
        client.send((addr, b"over tcp".into())).await.unwrap();
        let server = stream.next().await.unwrap().unwrap();
        let (from, data) = server.recv().await.unwrap();
        assert_eq!(data, b"over tcp");
        server.send((from, vec![0u8; 100_000].into())).await.unwrap();
        let (_, data) = client.recv().await.unwrap();
        assert_eq!(data.len(), 100_000, "frames larger than one segment work");
    }

    #[tokio::test]
    async fn send_to_wrong_peer_fails() {
        let stream = TcpListener::new()
            .listen(Addr::Tcp("127.0.0.1:0".parse().unwrap()))
            .await
            .unwrap();
        let addr = stream.local_addr();
        let client = TcpConnector::new().connect(addr).await.unwrap();
        let wrong = Addr::Tcp("127.0.0.1:1".parse().unwrap());
        assert!(client.send((wrong, vec![1].into())).await.is_err());
    }

    #[tokio::test]
    async fn peer_close_reports_closed() {
        let mut stream = TcpListener::new()
            .listen(Addr::Tcp("127.0.0.1:0".parse().unwrap()))
            .await
            .unwrap();
        let addr = stream.local_addr();
        let client = TcpConnector::new().connect(addr.clone()).await.unwrap();
        client.send((addr, vec![1].into())).await.unwrap();
        let server = stream.next().await.unwrap().unwrap();
        drop(server);
        match client.recv().await {
            Err(Error::ConnectionClosed) => {}
            other => panic!(
                "expected closed, got {:?}",
                other.map(|(a, d)| (a, d.len()))
            ),
        }
    }

    #[tokio::test]
    async fn interleaved_messages_keep_framing() {
        let mut stream = TcpListener::new()
            .listen(Addr::Tcp("127.0.0.1:0".parse().unwrap()))
            .await
            .unwrap();
        let addr = stream.local_addr();
        let client = std::sync::Arc::new(TcpConnector::new().connect(addr.clone()).await.unwrap());
        for i in 0..20u8 {
            client
                .send((addr.clone(), vec![i; (i as usize) + 1].into()))
                .await
                .unwrap();
        }
        let server = stream.next().await.unwrap().unwrap();
        for i in 0..20u8 {
            let (_, data) = server.recv().await.unwrap();
            assert_eq!(data, vec![i; (i as usize) + 1]);
        }
    }
}

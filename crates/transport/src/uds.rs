//! Unix-domain datagram transport: the container fast path's accelerated
//! implementation (§5: "connections that use this Chunnel and connect
//! applications on the same host transfer data using UNIX named sockets").
//!
//! Unix datagram sockets are bidirectional only if both sides are bound, so
//! the connector binds a uniquely-named client socket under a scratch
//! directory; it is unlinked when the connection drops.

use bertha::buf::Frame;
use bertha::chunnel::{ConnStream, RecvStream};
use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain};
use bertha::{Addr, ChunnelConnector, ChunnelListener, Error};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::net::UnixDatagram;
use tokio::sync::mpsc;

fn expect_unix(addr: &Addr) -> Result<PathBuf, Error> {
    match addr {
        Addr::Unix(p) => Ok(p.clone()),
        other => Err(Error::Other(format!("unix transport cannot reach {other}"))),
    }
}

fn scratch_path() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bertha-uds-{}-{}.sock", std::process::id(), n))
}

/// A bound Unix datagram socket that unlinks its path on drop.
struct BoundUds {
    socket: UnixDatagram,
    path: PathBuf,
}

impl BoundUds {
    fn bind(path: PathBuf) -> Result<Self, Error> {
        // A stale socket file from a crashed process would fail the bind.
        let _ = std::fs::remove_file(&path);
        let socket = UnixDatagram::bind(&path)?;
        Ok(BoundUds { socket, path })
    }
}

impl Drop for BoundUds {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Client-side Unix-datagram transport. Binds a scratch socket per
/// connection so the server can reply.
#[derive(Clone, Copy, Debug, Default)]
pub struct UdsConnector;

impl ChunnelConnector for UdsConnector {
    type Addr = Addr;
    type Connection = UdsConn;

    fn connect(&mut self, addr: Addr) -> BoxFut<'static, Result<UdsConn, Error>> {
        Box::pin(async move {
            expect_unix(&addr)?;
            let bound = BoundUds::bind(scratch_path())?;
            Ok(UdsConn {
                inner: Arc::new(bound),
            })
        })
    }
}

/// An unconnected Unix datagram socket as a Bertha connection.
pub struct UdsConn {
    inner: Arc<BoundUds>,
}

impl UdsConn {
    /// The path this connection's socket is bound to.
    pub fn local_addr(&self) -> Addr {
        Addr::Unix(self.inner.path.clone())
    }
}

impl ChunnelConnection for UdsConn {
    type Data = Datagram;

    fn send(&self, (addr, buf): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            let path = expect_unix(&addr)?;
            self.inner.socket.send_to(&buf, &path).await?;
            Ok(())
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            // Receive into a pool-leased frame so the payload reaches the
            // chunnel stack with headroom intact (DESIGN.md §12).
            let mut frame = Frame::recv_lease(crate::MAX_DATAGRAM);
            let Some(window) = frame.payload_mut() else {
                return Err(Error::Other("recv lease not writable".into()));
            };
            let (n, from) = self.inner.socket.recv_from(window).await?;
            frame.truncate(n);
            let from = from
                .as_pathname()
                .map(Path::to_path_buf)
                .unwrap_or_default();
            Ok((Addr::Unix(from), frame))
        })
    }
}

/// Server-side Unix-datagram transport: binds one named socket, yields a
/// connection per remote (bound) peer.
#[derive(Clone, Copy, Debug, Default)]
pub struct UdsListener {
    /// Queue depth per peer before datagrams are dropped (0: default 512).
    pub per_peer_queue: usize,
}

impl ChunnelListener for UdsListener {
    type Addr = Addr;
    type Connection = UdsPeerConn;
    type Stream = UdsIncoming;

    fn listen(&mut self, addr: Addr) -> BoxFut<'static, Result<Self::Stream, Error>> {
        let queue = if self.per_peer_queue == 0 {
            512
        } else {
            self.per_peer_queue
        };
        Box::pin(async move {
            let path = expect_unix(&addr)?;
            let bound = Arc::new(BoundUds::bind(path.clone())?);
            let (accept_tx, accept_rx) = mpsc::channel(64);
            tokio::spawn(demux(bound, accept_tx, queue));
            Ok(UdsIncoming {
                inner: RecvStream::new(accept_rx),
                local: path,
            })
        })
    }
}

/// Stream of incoming per-peer Unix-datagram connections.
pub struct UdsIncoming {
    inner: RecvStream<UdsPeerConn>,
    local: PathBuf,
}

impl UdsIncoming {
    /// The path the listening socket is bound to.
    pub fn local_addr(&self) -> Addr {
        Addr::Unix(self.local.clone())
    }
}

impl ConnStream for UdsIncoming {
    type Connection = UdsPeerConn;

    fn next(&mut self) -> BoxFut<'_, Option<Result<UdsPeerConn, Error>>> {
        self.inner.next()
    }
}

/// The demultiplexed flow from one peer socket on a listening Unix socket.
pub struct UdsPeerConn {
    shared: Arc<BoundUds>,
    peer: PathBuf,
    inbox: tokio::sync::Mutex<mpsc::Receiver<Frame>>,
}

impl UdsPeerConn {
    /// The remote peer this connection receives from.
    pub fn peer(&self) -> Addr {
        Addr::Unix(self.peer.clone())
    }
}

impl ChunnelConnection for UdsPeerConn {
    type Data = Datagram;

    fn send(&self, (addr, buf): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            let path = expect_unix(&addr)?;
            self.shared.socket.send_to(&buf, &path).await?;
            Ok(())
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            let mut inbox = self.inbox.lock().await;
            match inbox.recv().await {
                Some(buf) => Ok((Addr::Unix(self.peer.clone()), buf)),
                None => Err(Error::ConnectionClosed),
            }
        })
    }
}

async fn demux(
    shared: Arc<BoundUds>,
    accept_tx: mpsc::Sender<Result<UdsPeerConn, Error>>,
    queue: usize,
) {
    let mut peers: HashMap<PathBuf, mpsc::Sender<Frame>> = HashMap::new();
    loop {
        // Lease a fresh pool buffer per datagram: the frame is handed to
        // the peer inbox whole, no copy.
        let mut frame = Frame::recv_lease(crate::MAX_DATAGRAM);
        let Some(window) = frame.payload_mut() else {
            return;
        };
        let (n, from) = match shared.socket.recv_from(window).await {
            Ok(r) => r,
            Err(_) => return,
        };
        frame.truncate(n);
        let from = match from.as_pathname() {
            Some(p) => p.to_path_buf(),
            // Unbound sender: no reply path, so no connection.
            None => continue,
        };
        let payload = frame;

        if peers.get(&from).map(|tx| tx.is_closed()).unwrap_or(false) {
            peers.remove(&from);
        }

        match peers.get(&from) {
            Some(tx) => {
                let _ = tx.try_send(payload);
            }
            None => {
                if accept_tx.is_closed() {
                    if peers.values().all(|tx| tx.is_closed()) {
                        return;
                    }
                    continue;
                }
                let (tx, rx) = mpsc::channel(queue);
                let _ = tx.try_send(payload);
                let conn = UdsPeerConn {
                    shared: Arc::clone(&shared),
                    peer: from.clone(),
                    inbox: tokio::sync::Mutex::new(rx),
                };
                peers.insert(from.clone(), tx);
                // Never block the demux on the accept queue: every
                // established connection's traffic funnels through this
                // loop, so a stalled accept consumer must cost only the
                // *new* peer (whose handshake retry will re-create it),
                // not everyone.
                if accept_tx.try_send(Ok(conn)).is_err() {
                    peers.remove(&from);
                }
            }
        }
    }
}

/// Base transports hand datagrams straight to the kernel (or channel);
/// nothing is buffered, so there is nothing to drain.
impl Drain for UdsConn {}

/// Base transports hand datagrams straight to the kernel (or channel);
/// nothing is buffered, so there is nothing to drain.
impl Drain for UdsPeerConn {}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn round_trip_over_uds() {
        let srv_addr = Addr::Unix(scratch_path());
        let mut stream = UdsListener::default()
            .listen(srv_addr.clone())
            .await
            .unwrap();

        let client = UdsConnector.connect(srv_addr.clone()).await.unwrap();
        client
            .send((srv_addr.clone(), b"ping".into()))
            .await
            .unwrap();

        let conn = stream.next().await.unwrap().unwrap();
        let (from, data) = conn.recv().await.unwrap();
        assert_eq!(data, b"ping");
        assert_eq!(from, client.local_addr());
        conn.send((from, b"pong".into())).await.unwrap();
        let (_, data) = client.recv().await.unwrap();
        assert_eq!(data, b"pong");
    }

    #[tokio::test]
    async fn socket_files_are_cleaned_up() {
        let path = scratch_path();
        {
            let _stream = UdsListener::default()
                .listen(Addr::Unix(path.clone()))
                .await
                .unwrap();
            assert!(path.exists());
            // Dropping the stream alone does not kill the demux (live
            // conns may remain); dropping everything ends the process's
            // interest, and BoundUds::drop unlinks once the task exits.
        }
        // The listener's socket object lives in the demux task; poke it so
        // it notices abandonment by sending one datagram from a throwaway
        // socket.
        let poker = UdsConnector
            .connect(Addr::Unix(path.clone()))
            .await
            .unwrap();
        let _ = poker.send((Addr::Unix(path.clone()), vec![1].into())).await;
        tokio::time::sleep(std::time::Duration::from_millis(50)).await;
        assert!(!path.exists(), "socket file should be unlinked");
    }

    #[tokio::test]
    async fn two_clients_demuxed() {
        let srv_addr = Addr::Unix(scratch_path());
        let mut stream = UdsListener::default()
            .listen(srv_addr.clone())
            .await
            .unwrap();
        let c1 = UdsConnector.connect(srv_addr.clone()).await.unwrap();
        let c2 = UdsConnector.connect(srv_addr.clone()).await.unwrap();
        c1.send((srv_addr.clone(), b"a".into())).await.unwrap();
        c2.send((srv_addr.clone(), b"b".into())).await.unwrap();
        let s1 = stream.next().await.unwrap().unwrap();
        let s2 = stream.next().await.unwrap().unwrap();
        let (_, d1) = s1.recv().await.unwrap();
        let (_, d2) = s2.recv().await.unwrap();
        let mut got = vec![d1, d2];
        got.sort();
        assert_eq!(got, vec![b"a".to_vec(), b"b".to_vec()]);
    }
}

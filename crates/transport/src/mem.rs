//! In-process datagram transport, for tests and simulation.
//!
//! Endpoints register a name in a process-global switchboard; sending to
//! `Addr::Mem(name)` delivers to that endpoint's inbox. Semantics mirror
//! UDP: unreliable under overload (a full inbox drops the datagram), but
//! otherwise in-order and loss-free — compose with
//! [`fault`](crate::fault) to model a lossy network.

use bertha::buf::Frame;
use bertha::chunnel::RecvStream;
use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain};
use bertha::{Addr, ChunnelConnector, ChunnelListener, Error};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use tokio::sync::mpsc;

/// Inbox depth for every in-memory endpoint.
const INBOX_DEPTH: usize = 4096;

/// The process-global switchboard mapping endpoint names to inboxes.
struct Switchboard {
    endpoints: RwLock<HashMap<String, mpsc::Sender<Datagram>>>,
}

fn switchboard() -> &'static Switchboard {
    static SB: OnceLock<Switchboard> = OnceLock::new();
    SB.get_or_init(|| Switchboard {
        endpoints: RwLock::new(HashMap::new()),
    })
}

fn expect_mem(addr: &Addr) -> Result<String, Error> {
    match addr {
        Addr::Mem(n) => Ok(n.clone()),
        other => Err(Error::Other(format!("mem transport cannot reach {other}"))),
    }
}

fn auto_name() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    format!("auto-{}", COUNTER.fetch_add(1, Ordering::Relaxed))
}

/// A bound in-memory endpoint. Unregisters from the switchboard on drop.
pub struct MemSocket {
    name: String,
    inbox: tokio::sync::Mutex<mpsc::Receiver<Datagram>>,
}

impl MemSocket {
    /// Bind `name` (or an automatic unique name when `None`).
    pub fn bind(name: Option<String>) -> Result<Self, Error> {
        let name = name.unwrap_or_else(auto_name);
        let (tx, rx) = mpsc::channel(INBOX_DEPTH);
        let mut eps = switchboard().endpoints.write();
        // Re-binding over a dead endpoint is allowed (like SO_REUSEADDR
        // after a crash); over a live one is an error.
        if let Some(existing) = eps.get(&name) {
            if !existing.is_closed() {
                return Err(Error::Other(format!(
                    "mem endpoint {name:?} is already bound"
                )));
            }
        }
        eps.insert(name.clone(), tx);
        Ok(MemSocket {
            name,
            inbox: tokio::sync::Mutex::new(rx),
        })
    }

    /// This endpoint's address.
    pub fn local_addr(&self) -> Addr {
        Addr::Mem(self.name.clone())
    }
}

impl Drop for MemSocket {
    fn drop(&mut self) {
        // Close our receiver first so the switchboard's sender observes the
        // endpoint as dead; otherwise the entry would outlive the socket
        // (the receiver field is dropped only after this body runs) and
        // sends to the dead name would silently "succeed" instead of
        // returning NotFound.
        self.inbox.get_mut().close();
        let mut eps = switchboard().endpoints.write();
        if let Some(tx) = eps.get(&self.name) {
            if tx.is_closed() {
                eps.remove(&self.name);
            }
        }
    }
}

impl ChunnelConnection for MemSocket {
    type Data = Datagram;

    fn send(&self, (addr, buf): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            let dst = expect_mem(&addr)?;
            let tx = switchboard()
                .endpoints
                .read()
                .get(&dst)
                .cloned()
                .ok_or_else(|| Error::NotFound(format!("mem endpoint {dst:?}")))?;
            // A full inbox drops the datagram, like a UDP socket buffer.
            let _ = tx.try_send((Addr::Mem(self.name.clone()), buf));
            Ok(())
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            let mut inbox = self.inbox.lock().await;
            inbox.recv().await.ok_or(Error::ConnectionClosed)
        })
    }
}

/// Client-side in-memory transport; binds an automatically-named endpoint
/// per connection.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemConnector;

impl ChunnelConnector for MemConnector {
    type Addr = Addr;
    type Connection = MemSocket;

    fn connect(&mut self, addr: Addr) -> BoxFut<'static, Result<MemSocket, Error>> {
        Box::pin(async move {
            expect_mem(&addr)?;
            MemSocket::bind(None)
        })
    }
}

/// Server-side in-memory transport: binds the named endpoint and
/// demultiplexes by source.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemListener;

impl ChunnelListener for MemListener {
    type Addr = Addr;
    type Connection = MemPeerConn;
    type Stream = RecvStream<MemPeerConn>;

    fn listen(&mut self, addr: Addr) -> BoxFut<'static, Result<Self::Stream, Error>> {
        Box::pin(async move {
            let name = expect_mem(&addr)?;
            let socket = MemSocket::bind(Some(name))?;
            let (accept_tx, accept_rx) = mpsc::channel(64);
            tokio::spawn(demux(socket, accept_tx));
            Ok(RecvStream::new(accept_rx))
        })
    }
}

/// The demultiplexed flow from one peer endpoint.
pub struct MemPeerConn {
    peer: Addr,
    local: String,
    inbox: tokio::sync::Mutex<mpsc::Receiver<Frame>>,
}

impl MemPeerConn {
    /// The remote peer this connection receives from.
    pub fn peer(&self) -> Addr {
        self.peer.clone()
    }
}

impl ChunnelConnection for MemPeerConn {
    type Data = Datagram;

    fn send(&self, (addr, buf): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            let dst = expect_mem(&addr)?;
            let tx = switchboard()
                .endpoints
                .read()
                .get(&dst)
                .cloned()
                .ok_or_else(|| Error::NotFound(format!("mem endpoint {dst:?}")))?;
            let _ = tx.try_send((Addr::Mem(self.local.clone()), buf));
            Ok(())
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            let mut inbox = self.inbox.lock().await;
            match inbox.recv().await {
                Some(buf) => Ok((self.peer.clone(), buf)),
                None => Err(Error::ConnectionClosed),
            }
        })
    }
}

async fn demux(socket: MemSocket, accept_tx: mpsc::Sender<Result<MemPeerConn, Error>>) {
    let local = socket.name.clone();
    let mut peers: HashMap<Addr, mpsc::Sender<Frame>> = HashMap::new();
    loop {
        let (from, payload) = {
            let mut inbox = socket.inbox.lock().await;
            match inbox.recv().await {
                Some(d) => d,
                None => return,
            }
        };

        if peers.get(&from).map(|tx| tx.is_closed()).unwrap_or(false) {
            peers.remove(&from);
        }

        match peers.get(&from) {
            Some(tx) => {
                let _ = tx.try_send(payload);
            }
            None => {
                if accept_tx.is_closed() {
                    if peers.values().all(|tx| tx.is_closed()) {
                        return;
                    }
                    continue;
                }
                let (tx, rx) = mpsc::channel(INBOX_DEPTH);
                let _ = tx.try_send(payload);
                let conn = MemPeerConn {
                    peer: from.clone(),
                    local: local.clone(),
                    inbox: tokio::sync::Mutex::new(rx),
                };
                peers.insert(from.clone(), tx);
                // Never block the demux on the accept queue: every
                // established connection's traffic funnels through this
                // loop, so a stalled accept consumer must cost only the
                // *new* peer (whose handshake retry will re-create it),
                // not everyone.
                if accept_tx.try_send(Ok(conn)).is_err() {
                    peers.remove(&from);
                }
            }
        }
    }
}

/// Base transports hand datagrams straight to the kernel (or channel);
/// nothing is buffered, so there is nothing to drain.
impl Drain for MemSocket {}

/// Base transports hand datagrams straight to the kernel (or channel);
/// nothing is buffered, so there is nothing to drain.
impl Drain for MemPeerConn {}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha::chunnel::ConnStream;

    #[tokio::test]
    async fn round_trip() {
        let addr = Addr::Mem(format!("mem-rt-{}", std::process::id()));
        let mut stream = MemListener.listen(addr.clone()).await.unwrap();
        let client = MemConnector.connect(addr.clone()).await.unwrap();
        client.send((addr, b"m".into())).await.unwrap();
        let conn = stream.next().await.unwrap().unwrap();
        let (from, data) = conn.recv().await.unwrap();
        assert_eq!(data, b"m");
        conn.send((from, b"r".into())).await.unwrap();
        let (_, data) = client.recv().await.unwrap();
        assert_eq!(data, b"r");
    }

    #[tokio::test]
    async fn double_bind_rejected() {
        let name = "mem-double-bind".to_string();
        let _a = MemSocket::bind(Some(name.clone())).unwrap();
        assert!(MemSocket::bind(Some(name)).is_err());
    }

    #[tokio::test]
    async fn rebind_after_drop_ok() {
        let name = "mem-rebind".to_string();
        let a = MemSocket::bind(Some(name.clone())).unwrap();
        drop(a);
        assert!(MemSocket::bind(Some(name)).is_ok());
    }

    #[tokio::test]
    async fn dropped_endpoint_is_not_found() {
        let name = "mem-drop-unbinds".to_string();
        let s = MemSocket::bind(Some(name.clone())).unwrap();
        let peer = MemSocket::bind(None).unwrap();
        let peer_name = peer.local_addr();
        drop(s);
        // The dropped endpoint must be gone from the switchboard: sends to
        // it fail loudly rather than silently succeeding.
        let err = peer.send((Addr::Mem(name), vec![1].into())).await.unwrap_err();
        assert!(matches!(err, Error::NotFound(_)));
        let _ = peer_name;
    }

    #[tokio::test]
    async fn send_to_unknown_endpoint_errors() {
        let s = MemSocket::bind(None).unwrap();
        let err = s
            .send((Addr::Mem("mem-nobody-home".into()), vec![1].into()))
            .await
            .unwrap_err();
        assert!(matches!(err, Error::NotFound(_)));
    }
}

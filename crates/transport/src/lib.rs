//! Base transports every Bertha stack bottoms out in.
//!
//! Each transport implements [`bertha::ChunnelConnector`] (client side) and
//! [`bertha::ChunnelListener`] (server side), producing connections whose
//! data is a [`bertha::Datagram`]: a `(Addr, Vec<u8>)` pair. Datagram
//! transports demultiplex incoming traffic by source address, so a
//! "connection" on the listen side is the flow from one peer — this is what
//! lets negotiation (which happens per connection, §4.3) work over
//! connectionless sockets.
//!
//! Transports provided:
//!
//! - [`udp`]: UDP sockets, the paper prototype's base transport;
//! - [`tcp`]: TCP with 32-bit length-delimited framing;
//! - [`uds`]: Unix-domain datagram sockets, the container fast path's
//!   accelerated implementation (§5);
//! - [`mem`]: an in-process transport for tests and simulation;
//! - [`fault`]: a fault-injecting wrapper (drop / duplicate / reorder /
//!   corrupt / delay), in the spirit of smoltcp's example fault injectors.

#![warn(missing_docs)]

pub mod any;
pub mod fault;
pub mod mem;
pub mod tcp;
pub mod udp;
pub mod uds;

pub use any::{bind_any, AnyConn};
pub use fault::{FaultChunnel, FaultConfig, FaultHandle};
pub use mem::{MemConnector, MemListener};
pub use tcp::{TcpConnector, TcpListener};
pub use udp::{UdpConnector, UdpListener};
pub use uds::{UdsConnector, UdsListener};

/// Largest datagram any transport here accepts (UDP's practical limit).
pub const MAX_DATAGRAM: usize = 65_507;

//! The standard Bertha chunnel library.
//!
//! Every chunnel here is a *fallback implementation* in the paper's sense
//! (§2): pure software, runnable on any end host, assuming nothing beyond
//! the standard library — they "merely ensure that applications can function
//! in the absence of a better implementation". Each registers a capability
//! GUID with negotiation so operators can substitute accelerated variants.
//!
//! Byte-level chunnels (everything except [`serialize`]) transform
//! `(Addr, Vec<u8>)` to `(Addr, Vec<u8>)` and therefore compose freely and
//! can be registered as dynamic fallbacks
//! ([`bertha::register_chunnel`], Listing 5):
//!
//! - [`reliable`]: exactly-once delivery via ACKs and retransmission;
//! - [`ordering`]: in-order delivery via sequence numbers and buffering;
//! - [`batch`]: coalesce small messages, amortizing per-datagram cost;
//! - [`frag`]: fragmentation/reassembly above datagram size limits;
//! - [`ratelimit`]: token-bucket traffic shaping;
//! - [`heartbeat`]: keepalives and peer liveness detection;
//! - [`compress`]: an in-repo LZ-style compressor;
//! - [`crypt`]: a **toy** stream cipher standing in for an encryption
//!   offload workload (see its module docs — not secure);
//! - [`tracing`]: stamp sampled connections' data frames with their
//!   negotiation-established trace context (cross-host tracing);
//! - [`serialize`]: typed messages over bincode — "applications send and
//!   receive objects rather than bytes" (§3.2).

#![warn(missing_docs)]

pub mod batch;
pub mod compress;
pub mod crypt;
pub mod frag;
pub mod heartbeat;
pub mod ordering;
pub mod ratelimit;
pub mod reliable;
pub mod serialize;
pub mod tracing;

pub use batch::{BatchChunnel, BatchStats};
pub use compress::CompressChunnel;
pub use crypt::CryptChunnel;
pub use frag::FragChunnel;
pub use heartbeat::{HeartbeatChunnel, HeartbeatStats};
pub use ordering::OrderingChunnel;
pub use ratelimit::{RateLimitChunnel, RateLimitStats};
pub use reliable::{ReliabilityChunnel, ReliableStats};
pub use serialize::SerializeChunnel;
pub use tracing::{TracingChunnel, TracingStats};

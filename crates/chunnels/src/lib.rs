//! The standard Bertha chunnel library.
//!
//! Every chunnel here is a *fallback implementation* in the paper's sense
//! (§2): pure software, runnable on any end host, assuming nothing beyond
//! the standard library — they "merely ensure that applications can function
//! in the absence of a better implementation". Each registers a capability
//! GUID with negotiation so operators can substitute accelerated variants.
//!
//! Byte-level chunnels (everything except [`serialize`]) transform
//! `(Addr, Vec<u8>)` to `(Addr, Vec<u8>)` and therefore compose freely and
//! can be registered as dynamic fallbacks
//! ([`bertha::register_chunnel`], Listing 5):
//!
//! - [`reliable`]: exactly-once delivery via ACKs and retransmission;
//! - [`ordering`]: in-order delivery via sequence numbers and buffering;
//! - [`batch`]: coalesce small messages, amortizing per-datagram cost;
//! - [`frag`]: fragmentation/reassembly above datagram size limits;
//! - [`ratelimit`]: token-bucket traffic shaping;
//! - [`heartbeat`]: keepalives and peer liveness detection;
//! - [`compress`]: an in-repo LZ-style compressor;
//! - [`crypt`]: a **toy** stream cipher standing in for an encryption
//!   offload workload (see its module docs — not secure);
//! - [`tracing`]: stamp sampled connections' data frames with their
//!   negotiation-established trace context (cross-host tracing);
//! - [`serialize`]: typed messages over bincode — "applications send and
//!   receive objects rather than bytes" (§3.2).

#![warn(missing_docs)]

pub mod batch;
pub mod compress;
pub mod crypt;
pub mod frag;
pub mod heartbeat;
pub mod ordering;
pub mod ratelimit;
pub mod reliable;
pub mod serialize;
pub mod tracing;

pub use batch::{BatchChunnel, BatchStats};

/// Split a little-endian `u64` off the front of a buffer, panic-free.
/// Returns `None` when the buffer is too short.
pub(crate) fn take_u64_le(b: &[u8]) -> Option<(u64, &[u8])> {
    let head: [u8; 8] = b.get(..8)?.try_into().ok()?;
    Some((u64::from_le_bytes(head), b.get(8..)?))
}

/// Split a little-endian `u32` off the front of a buffer, panic-free.
pub(crate) fn take_u32_le(b: &[u8]) -> Option<(u32, &[u8])> {
    let head: [u8; 4] = b.get(..4)?.try_into().ok()?;
    Some((u32::from_le_bytes(head), b.get(4..)?))
}

/// Split a little-endian `u16` off the front of a buffer, panic-free.
pub(crate) fn take_u16_le(b: &[u8]) -> Option<(u16, &[u8])> {
    let head: [u8; 2] = b.get(..2)?.try_into().ok()?;
    Some((u16::from_le_bytes(head), b.get(2..)?))
}
pub use compress::CompressChunnel;
pub use crypt::CryptChunnel;
pub use frag::FragChunnel;
pub use heartbeat::{HeartbeatChunnel, HeartbeatStats};
pub use ordering::OrderingChunnel;
pub use ratelimit::{RateLimitChunnel, RateLimitStats};
pub use reliable::{ReliabilityChunnel, ReliableStats};
pub use serialize::SerializeChunnel;
pub use tracing::{TracingChunnel, TracingStats};

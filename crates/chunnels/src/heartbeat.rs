//! Heartbeat chunnel: peer liveness over connectionless transports.
//!
//! Datagram transports have no connection state, so a silent peer is
//! indistinguishable from an idle one. This chunnel sends a small
//! keepalive frame whenever the connection has been send-idle for an
//! interval, and treats a peer silent for `dead_after` as gone, failing
//! `recv` instead of blocking forever. Keepalive generation is a classic
//! NIC offload (TCP keepalive offload exists in the wild), making this a
//! negotiable capability with the usual software fallback.
//!
//! Wire format: `[0x10][payload]` for data, `[0x11]` for a heartbeat.

use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain, ProfiledConn};
use bertha::negotiate::{guid, Negotiate};
use bertha::{Addr, Chunnel, Error};
use bertha_telemetry as tele;
use parking_lot::Mutex;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use bertha::negotiate::wire::{HEARTBEAT_BEAT as BEAT, HEARTBEAT_DATA as DATA};

/// Heartbeat parameters.
#[derive(Clone, Debug)]
pub struct HeartbeatConfig {
    /// Send a heartbeat after this much send-idle time.
    pub interval: Duration,
    /// Declare the peer dead after this much receive silence.
    pub dead_after: Duration,
    /// Who to keep alive (heartbeats need a destination even when the
    /// application is not sending).
    pub peer: Addr,
}

/// The heartbeat chunnel. See the module docs.
#[derive(Clone, Debug)]
pub struct HeartbeatChunnel {
    cfg: HeartbeatConfig,
}

impl HeartbeatChunnel {
    /// Keep a connection to `peer` alive, beating every `interval` and
    /// declaring death after `dead_after` of silence.
    pub fn new(peer: Addr, interval: Duration, dead_after: Duration) -> Self {
        HeartbeatChunnel {
            cfg: HeartbeatConfig {
                interval,
                dead_after,
                peer,
            },
        }
    }
}

impl Negotiate for HeartbeatChunnel {
    const CAPABILITY: u64 = guid("bertha/heartbeat");
    const IMPL: u64 = guid("bertha/heartbeat/sw");
    const NAME: &'static str = "heartbeat/sw";
}

bertha::negotiable!(HeartbeatChunnel);

struct Liveness {
    last_sent: Instant,
    last_heard: Instant,
}

/// Per-connection heartbeat counters, also mirrored into the global
/// registry (`heartbeat.*` metrics).
#[derive(Debug)]
pub struct HeartbeatStats {
    /// Keepalive frames sent by the background beater.
    pub beats_sent: tele::MirroredCounter,
    /// Keepalive frames received (and consumed) from the peer.
    pub beats_heard: tele::MirroredCounter,
    /// Times `recv` declared the peer dead after `dead_after` of silence.
    pub liveness_timeouts: tele::MirroredCounter,
}

impl HeartbeatStats {
    fn new() -> Self {
        HeartbeatStats {
            beats_sent: tele::MirroredCounter::new("heartbeat.beats_sent"),
            beats_heard: tele::MirroredCounter::new("heartbeat.beats_heard"),
            liveness_timeouts: tele::MirroredCounter::new("heartbeat.liveness_timeouts"),
        }
    }
}

/// Connection produced by [`HeartbeatChunnel`].
pub struct HeartbeatConn<C> {
    inner: Arc<C>,
    cfg: HeartbeatConfig,
    state: Arc<Mutex<Liveness>>,
    stats: Arc<HeartbeatStats>,
    beater: tokio::task::JoinHandle<()>,
}

impl<C> Drop for HeartbeatConn<C> {
    fn drop(&mut self) {
        self.beater.abort();
    }
}

impl<InC> Chunnel<InC> for HeartbeatChunnel
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Connection = ProfiledConn<HeartbeatConn<InC>>;

    fn connect_wrap(&self, inner: InC) -> BoxFut<'static, Result<Self::Connection, Error>> {
        let cfg = self.cfg.clone();
        Box::pin(async move {
            if cfg.interval.is_zero() || cfg.dead_after <= cfg.interval {
                return Err(Error::Other(format!(
                    "heartbeat config must satisfy 0 < interval < dead_after \
                     (got {:?} / {:?})",
                    cfg.interval, cfg.dead_after
                )));
            }
            let inner = Arc::new(inner);
            let state = Arc::new(Mutex::new(Liveness {
                last_sent: Instant::now(),
                last_heard: Instant::now(),
            }));
            let stats = Arc::new(HeartbeatStats::new());
            let beater = tokio::spawn(beat(
                Arc::downgrade(&inner),
                Arc::clone(&state),
                Arc::clone(&stats),
                cfg.clone(),
            ));
            let conn = HeartbeatConn {
                inner,
                cfg,
                state,
                stats,
                beater,
            };
            Ok(ProfiledConn::datagram(Self::NAME, conn))
        })
    }
}

async fn beat<C>(
    inner: Weak<C>,
    state: Arc<Mutex<Liveness>>,
    stats: Arc<HeartbeatStats>,
    cfg: HeartbeatConfig,
) where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    loop {
        tokio::time::sleep(cfg.interval / 2).await;
        let Some(conn) = inner.upgrade() else {
            return;
        };
        let due = {
            let st = state.lock();
            st.last_sent.elapsed() >= cfg.interval
        };
        if due {
            if conn.send((cfg.peer.clone(), [BEAT].into())).await.is_err() {
                return;
            }
            stats.beats_sent.incr();
            state.lock().last_sent = Instant::now();
        }
    }
}

impl<C> HeartbeatConn<C> {
    /// This connection's heartbeat counters.
    pub fn stats(&self) -> &HeartbeatStats {
        &self.stats
    }

    /// Time since the peer was last heard from (data or heartbeat).
    pub fn silence(&self) -> Duration {
        self.state.lock().last_heard.elapsed()
    }

    /// Whether the peer is currently considered alive.
    pub fn is_alive(&self) -> bool {
        self.silence() < self.cfg.dead_after
    }

    fn peer_dead(&self) -> Error {
        self.stats.liveness_timeouts.incr();
        let silent_for = self.silence();
        let now_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let last_seen_unix_ms =
            now_unix_ms.saturating_sub(silent_for.as_millis().min(u64::MAX as u128) as u64);
        tele::event!(
            tele::Level::Warn,
            "chunnel",
            "peer_dead",
            "dead_after_ms" = self.cfg.dead_after.as_millis().min(u64::MAX as u128) as u64,
            "silent_for_ms" = silent_for.as_millis().min(u64::MAX as u128) as u64,
        );
        let _ = tele::flight::dump("chunnel.peer_dead", None);
        // Typed so supervision can tell a dead peer (renegotiate / fail
        // over) from a timed-out control-plane request (retry / resume).
        Error::PeerDead {
            silent_for,
            last_seen_unix_ms,
        }
    }
}

impl<C> ChunnelConnection for HeartbeatConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Data = Datagram;

    fn send(&self, (addr, payload): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            // Tag byte lands in the frame's reserved headroom.
            let mut framed = payload;
            framed.prepend(&[DATA]);
            self.inner.send((addr, framed)).await?;
            self.state.lock().last_sent = Instant::now();
            Ok(())
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            loop {
                let remaining = match self.cfg.dead_after.checked_sub(self.silence()) {
                    Some(r) => r,
                    None => return Err(self.peer_dead()),
                };
                let (from, buf) = match tokio::time::timeout(remaining, self.inner.recv()).await {
                    Err(_silent_too_long) => return Err(self.peer_dead()),
                    Ok(r) => r?,
                };
                self.state.lock().last_heard = Instant::now();
                let mut buf = buf;
                match buf.first().copied() {
                    Some(DATA) => {
                        // O(1) window adjustment, not a copy.
                        buf.strip(1);
                        return Ok((from, buf));
                    }
                    Some(BEAT) => {
                        self.stats.beats_heard.incr();
                        continue; // liveness only
                    }
                    _ => return Err(Error::Encode("bad heartbeat framing".into())),
                }
            }
        })
    }
}

/// Heartbeats are fire-and-forget: nothing is buffered, so there is
/// nothing to flush before a stack swap.
impl<C> Drain for HeartbeatConn<C> where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static
{
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha::conn::pair;

    fn cfg_pair(interval_ms: u64, dead_ms: u64) -> (HeartbeatChunnel, HeartbeatChunnel, Addr) {
        let peer = Addr::Mem("hb-peer".into());
        let c = HeartbeatChunnel::new(
            peer.clone(),
            Duration::from_millis(interval_ms),
            Duration::from_millis(dead_ms),
        );
        (c.clone(), c, peer)
    }

    #[tokio::test]
    async fn data_round_trip() {
        let (ca, cb, peer) = cfg_pair(50, 500);
        let (a, b) = pair::<Datagram>(64);
        let ha = ca.connect_wrap(a).await.unwrap();
        let hb = cb.connect_wrap(b).await.unwrap();
        ha.send((peer, b"beat this".into())).await.unwrap();
        let (_, d) = hb.recv().await.unwrap();
        assert_eq!(d, b"beat this");
    }

    #[tokio::test]
    async fn idle_peers_stay_alive_via_heartbeats() {
        let (ca, cb, _) = cfg_pair(20, 200);
        let (a, b) = pair::<Datagram>(64);
        let ha = Arc::new(ca.connect_wrap(a).await.unwrap());
        let hb = Arc::new(cb.connect_wrap(b).await.unwrap());
        // Nobody sends data; liveness is observed by whoever is in recv,
        // so pump both sides in the background (heartbeats are consumed
        // there and never surface as data).
        let pump_a = {
            let ha = Arc::clone(&ha);
            tokio::spawn(async move { ha.recv().await })
        };
        let pump_b = {
            let hb = Arc::clone(&hb);
            tokio::spawn(async move { hb.recv().await })
        };
        tokio::time::sleep(Duration::from_millis(400)).await;
        // Counter-based: `is_alive()` needs a beat within the last 200 ms,
        // which a starved CI machine can miss; at least one beat sent and
        // heard per side over the whole window is the robust claim.
        assert!(
            ha.stats().beats_sent.get() >= 1,
            "beater never ran on side a"
        );
        assert!(
            hb.stats().beats_sent.get() >= 1,
            "beater never ran on side b"
        );
        assert!(
            ha.stats().beats_heard.get() >= 1,
            "side a never heard a keepalive"
        );
        assert!(
            hb.stats().beats_heard.get() >= 1,
            "side b never heard a keepalive"
        );
        pump_a.abort();
        pump_b.abort();
    }

    #[tokio::test]
    async fn dead_peer_detected() {
        let (ca, _cb, _) = cfg_pair(20, 120);
        let (a, b) = pair::<Datagram>(64);
        let ha = ca.connect_wrap(a).await.unwrap();
        drop(b); // peer gone: no heartbeats will arrive
        match ha.recv().await {
            Err(Error::PeerDead {
                silent_for,
                last_seen_unix_ms,
            }) => {
                assert!(
                    silent_for >= Duration::from_millis(120),
                    "silence {silent_for:?} below dead_after"
                );
                assert!(last_seen_unix_ms > 0, "last-seen timestamp populated");
                // The timeout counter, not a wall-clock upper bound, is
                // what proves detection happened via the liveness path.
                assert_eq!(ha.stats().liveness_timeouts.get(), 1);
            }
            Err(Error::ConnectionClosed) => {} // channel pair reports closure first
            other => panic!("expected liveness failure, got {other:?}"),
        }
    }

    #[tokio::test]
    async fn silence_tracks_incoming_only() {
        let (ca, cb, peer) = cfg_pair(1000, 5000); // no beats during the test
        let (a, b) = pair::<Datagram>(64);
        let ha = ca.connect_wrap(a).await.unwrap();
        let hb = cb.connect_wrap(b).await.unwrap();
        tokio::time::sleep(Duration::from_millis(50)).await;
        assert!(ha.silence() >= Duration::from_millis(40));
        hb.send((peer, vec![1].into())).await.unwrap();
        ha.recv().await.unwrap();
        assert!(ha.silence() < Duration::from_millis(40));
    }

    #[tokio::test]
    async fn invalid_config_rejected() {
        let peer = Addr::Mem("x".into());
        let (a, _b) = pair::<Datagram>(1);
        let bad = HeartbeatChunnel::new(peer.clone(), Duration::ZERO, Duration::from_secs(1));
        assert!(bad.connect_wrap(a).await.is_err());
        let (a, _b) = pair::<Datagram>(1);
        let bad = HeartbeatChunnel::new(peer, Duration::from_secs(2), Duration::from_secs(1));
        assert!(bad.connect_wrap(a).await.is_err());
    }
}

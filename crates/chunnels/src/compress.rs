//! Compression chunnel with an in-repo LZSS-style compressor.
//!
//! Compression is a classic candidate for offload (many NICs and DPUs ship
//! compression engines); this module provides the software fallback. The
//! codec is a small, dependency-free LZSS variant: a 4 KiB sliding window,
//! matches of 3–130 bytes encoded as (distance, length) pairs, literals
//! passed through, with a one-byte header choosing between compressed and
//! stored representations (incompressible payloads cost exactly one byte).

use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain, ProfiledConn};
use bertha::negotiate::{guid, Negotiate};
use bertha::{Chunnel, Error};

use bertha::negotiate::wire::{COMPRESS_LZ as LZ, COMPRESS_RAW as RAW};
const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = MIN_MATCH + 127;

/// Compress a buffer. The output always begins with a header byte marking
/// it compressed, or stored raw when compression did not help.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.push(LZ);

    // Token stream: flag bytes cover 8 items each; bit set = match.
    let mut flags_pos = out.len();
    out.push(0);
    let mut flag_bit = 0u8;

    // Chain hash of 3-byte prefixes for match finding.
    let mut head: Vec<i32> = vec![-1; 1 << 13];
    let mut prev: Vec<i32> = vec![-1; input.len().max(1)];
    let hash = |a: u8, b: u8, c: u8| -> usize {
        ((a as usize) << 6 ^ (b as usize) << 3 ^ (c as usize)) & ((1 << 13) - 1)
    };

    let mut i = 0;
    let emit = |out: &mut Vec<u8>, flags_pos: &mut usize, flag_bit: &mut u8, is_match: bool| {
        if *flag_bit == 8 {
            *flags_pos = out.len();
            out.push(0);
            *flag_bit = 0;
        }
        if is_match {
            out[*flags_pos] |= 1 << *flag_bit;
        }
        *flag_bit += 1;
    };

    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash(input[i], input[i + 1], input[i + 2]);
            let mut cand = head[h];
            let mut tries = 16;
            while cand >= 0 && tries > 0 {
                let c = cand as usize;
                let dist = i - c;
                if dist > WINDOW {
                    break;
                }
                let max = (input.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max && input[c + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l == max {
                        break;
                    }
                }
                cand = prev[c];
                tries -= 1;
            }
        }

        if best_len >= MIN_MATCH {
            emit(&mut out, &mut flags_pos, &mut flag_bit, true);
            // [len - MIN_MATCH: 7 bits + dist high 4 bits? keep simple:]
            // [len - MIN_MATCH: u8][dist: u16 LE]
            out.push((best_len - MIN_MATCH) as u8);
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            // Index the skipped positions so later matches can find them.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= input.len() {
                    let h = hash(input[i], input[i + 1], input[i + 2]);
                    prev[i] = head[h];
                    head[h] = i as i32;
                }
                i += 1;
            }
        } else {
            emit(&mut out, &mut flags_pos, &mut flag_bit, false);
            out.push(input[i]);
            if i + MIN_MATCH <= input.len() {
                let h = hash(input[i], input[i + 1], input[i + 2]);
                prev[i] = head[h];
                head[h] = i as i32;
            }
            i += 1;
        }
    }

    if out.len() > input.len() {
        let mut stored = Vec::with_capacity(input.len() + 1);
        stored.push(RAW);
        stored.extend_from_slice(input);
        return stored;
    }
    out
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, Error> {
    let (&header, body) = input
        .split_first()
        .ok_or_else(|| Error::Encode("empty compressed buffer".into()))?;
    match header {
        RAW => Ok(body.to_vec()),
        LZ => {
            let mut out = Vec::with_capacity(body.len() * 2);
            let mut pos = 0;
            while pos < body.len() {
                let flags = body[pos];
                pos += 1;
                for bit in 0..8 {
                    if pos >= body.len() {
                        break;
                    }
                    if flags & (1 << bit) != 0 {
                        if pos + 3 > body.len() {
                            return Err(Error::Encode("truncated match token".into()));
                        }
                        let len = body[pos] as usize + MIN_MATCH;
                        let dist =
                            u16::from_le_bytes(body[pos + 1..pos + 3].try_into().unwrap()) as usize;
                        pos += 3;
                        if dist == 0 || dist > out.len() {
                            return Err(Error::Encode(format!(
                                "bad match distance {dist} at output length {}",
                                out.len()
                            )));
                        }
                        let start = out.len() - dist;
                        for k in 0..len {
                            let b = out[start + k];
                            out.push(b);
                        }
                    } else {
                        out.push(body[pos]);
                        pos += 1;
                    }
                }
            }
            Ok(out)
        }
        other => Err(Error::Encode(format!("unknown compression header {other}"))),
    }
}

/// The compression chunnel. See the module docs.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompressChunnel;

impl Negotiate for CompressChunnel {
    const CAPABILITY: u64 = guid("bertha/compress");
    const IMPL: u64 = guid("bertha/compress/lzss");
    const NAME: &'static str = "compress/lzss";
}

bertha::negotiable!(CompressChunnel);

impl<InC> Chunnel<InC> for CompressChunnel
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Connection = ProfiledConn<CompressConn<InC>>;

    fn connect_wrap(&self, inner: InC) -> BoxFut<'static, Result<Self::Connection, Error>> {
        Box::pin(async move { Ok(ProfiledConn::datagram(Self::NAME, CompressConn { inner })) })
    }
}

/// Connection produced by [`CompressChunnel`].
pub struct CompressConn<C> {
    inner: C,
}

impl<C> ChunnelConnection for CompressConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync,
{
    type Data = Datagram;

    fn send(&self, (addr, payload): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move { self.inner.send((addr, compress(&payload).into())).await })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            let (from, mut buf) = self.inner.recv().await?;
            // Stored-raw payloads skip the codec entirely: strip the tag
            // byte in place and hand the pooled frame up unchanged.
            if buf.first() == Some(&RAW) {
                buf.strip(1);
                return Ok((from, buf));
            }
            Ok((from, decompress(&buf)?.into()))
        })
    }
}

/// Stateless on the send path: draining is entirely the inner layer's
/// concern.
impl<C> Drain for CompressConn<C>
where
    C: Drain,
{
    fn drain(&self) -> BoxFut<'_, Result<(), Error>> {
        self.inner.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha::conn::pair;
    use bertha::Addr;
    use proptest::prelude::*;

    #[test]
    fn compresses_repetitive_data() {
        let input = b"abcabcabcabcabcabcabcabcabcabcabcabc".repeat(20);
        let c = compress(&input);
        assert!(c.len() < input.len() / 2, "{} vs {}", c.len(), input.len());
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn stores_incompressible_data() {
        // A byte sequence with no 3-byte repeats.
        let input: Vec<u8> = (0..=255u8).collect();
        let c = compress(&input);
        assert_eq!(c[0], RAW);
        assert_eq!(c.len(), input.len() + 1);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn empty_input() {
        let c = compress(b"");
        assert_eq!(decompress(&c).unwrap(), b"");
    }

    #[test]
    fn rejects_corrupt_streams() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[0x42, 1, 2]).is_err());
        // A match referring behind the start of output.
        assert!(decompress(&[LZ, 0b0000_0001, 0, 9, 9]).is_err());
    }

    #[tokio::test]
    async fn chunnel_round_trip() {
        let (a, b) = pair::<Datagram>(8);
        let ca = CompressChunnel.connect_wrap(a).await.unwrap();
        let cb = CompressChunnel.connect_wrap(b).await.unwrap();
        let addr = Addr::Mem("peer".into());
        let payload = b"the quick brown fox jumps over the lazy dog, twice: the quick brown fox jumps over the lazy dog".to_vec();
        ca.send((addr, payload.clone().into())).await.unwrap();
        let (_, d) = cb.recv().await.unwrap();
        assert_eq!(d, payload);
    }

    proptest! {
        #[test]
        fn round_trips_arbitrary_bytes(input in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let c = compress(&input);
            prop_assert_eq!(decompress(&c).unwrap(), input);
        }

        #[test]
        fn round_trips_repetitive_bytes(byte in any::<u8>(), n in 0usize..8192) {
            let input = vec![byte; n];
            let c = compress(&input);
            prop_assert_eq!(decompress(&c).unwrap(), input.clone());
            if n > 64 {
                prop_assert!(c.len() < input.len() / 4);
            }
        }

        #[test]
        fn decompress_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decompress(&garbage);
        }
    }
}

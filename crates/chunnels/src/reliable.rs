//! Reliability chunnel: exactly-once delivery over a lossy datagram
//! transport (Listings 4–5's `reliable()`).
//!
//! Classic ARQ: every outgoing payload gets a sequence number and is held
//! until acknowledged; a per-connection pacer retransmits on an
//! exponentially backed-off, jittered timeout (doubling from
//! [`ReliabilityConfig::rto`] up to [`ReliabilityConfig::rto_max`]), giving
//! up (and failing the connection) after a retry budget. The receive side
//! acknowledges everything and deduplicates, so the application sees each
//! payload exactly once. Delivery order is arrival order — compose with
//! [`ordering`](crate::ordering) for in-order delivery.
//!
//! A dedicated pump task owns the inner connection's receive side so ACKs
//! are processed even when the application is not in `recv` (one-way
//! flows). The task holds only a weak reference and exits when the
//! connection is dropped.

use bertha::buf::Frame;
use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain, ProfiledConn};
use bertha::negotiate::{guid, Negotiate};
use bertha::{Addr, Chunnel, Error};
use bertha_telemetry as tele;
use parking_lot::Mutex;
use rand::Rng;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};
use tokio::sync::{mpsc, Notify};

use bertha::negotiate::wire::{RELIABLE_ACK as ACK, RELIABLE_DATA as DATA};

/// Configuration for the ARQ.
#[derive(Clone, Copy, Debug)]
pub struct ReliabilityConfig {
    /// Initial retransmission timeout. Each retransmission of a payload
    /// doubles its timeout (capped at [`rto_max`](Self::rto_max)), and the
    /// actual wait is jittered down by up to half so that payloads lost
    /// together do not retransmit in lockstep.
    pub rto: Duration,
    /// Retransmissions before the connection is declared dead.
    pub max_retries: u32,
    /// Cap on the backed-off retransmission timeout.
    pub rto_max: Duration,
    /// Maximum unacknowledged payloads before `send` applies backpressure.
    pub window: usize,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        // Worst-case patience before giving up: 100 + 200 + 400 + 500ms
        // (capped) ≈ 1.2s, equivalent to the previous fixed 100ms × 10
        // schedule's 1.0s total budget, but with fewer wasted transmissions
        // under sustained loss.
        ReliabilityConfig {
            rto: Duration::from_millis(100),
            max_retries: 4,
            rto_max: Duration::from_millis(500),
            window: 64,
        }
    }
}

/// Shrink an interval by a uniformly random factor in `[0.5, 1.0]`, so
/// concurrent losers desynchronize. Never lengthens the interval: the
/// un-jittered doubling schedule is a hard bound on total patience.
fn jittered(d: Duration) -> Duration {
    d.mul_f64(rand::thread_rng().gen_range(0.5..=1.0))
}

/// The reliability chunnel. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct ReliabilityChunnel {
    cfg: ReliabilityConfig,
}

impl ReliabilityChunnel {
    /// ARQ with explicit parameters.
    pub fn new(cfg: ReliabilityConfig) -> Self {
        ReliabilityChunnel { cfg }
    }
}

impl Negotiate for ReliabilityChunnel {
    const CAPABILITY: u64 = guid("bertha/reliable");
    const IMPL: u64 = guid("bertha/reliable/arq");
    const NAME: &'static str = "reliable/arq";
}

bertha::negotiable!(ReliabilityChunnel);

impl<InC> Chunnel<InC> for ReliabilityChunnel
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Connection = ProfiledConn<ReliableConn<InC>>;

    fn connect_wrap(&self, inner: InC) -> BoxFut<'static, Result<Self::Connection, Error>> {
        let cfg = self.cfg;
        Box::pin(async move {
            Ok(ProfiledConn::datagram(
                Self::NAME,
                ReliableConn::start(inner, cfg),
            ))
        })
    }
}

/// Per-connection ARQ counters, also mirrored into the global registry
/// (`reliable.*` metrics). `get` reads this connection's value alone.
#[derive(Debug)]
pub struct ReliableStats {
    /// Payloads accepted for (first) transmission.
    pub sent: tele::MirroredCounter,
    /// Retransmissions performed by the pacer.
    pub retransmits: tele::MirroredCounter,
    /// Fresh payloads delivered to the application.
    pub delivered: tele::MirroredCounter,
    /// Duplicate data frames suppressed by receive-side dedup.
    pub duplicates: tele::MirroredCounter,
    /// 1 once the connection declared itself dead (budget exhausted or
    /// transport closed).
    pub dead: tele::MirroredCounter,
}

impl ReliableStats {
    fn new() -> Self {
        ReliableStats {
            sent: tele::MirroredCounter::new("reliable.sent"),
            retransmits: tele::MirroredCounter::new("reliable.retransmits"),
            delivered: tele::MirroredCounter::new("reliable.delivered"),
            duplicates: tele::MirroredCounter::new("reliable.duplicates_dropped"),
            dead: tele::MirroredCounter::new("reliable.dead"),
        }
    }
}

struct Pending {
    addr: Addr,
    /// The complete wire frame (header + payload) in a pooled slab.
    /// Cloning it for retransmission is a refcount bump, not a copy.
    frame: Frame,
    /// When the next retransmission is due.
    next_retx: Instant,
    /// Current (un-jittered) backoff interval; doubles per retransmission.
    rto: Duration,
    retries: u32,
}

struct RelState {
    next_seq: u64,
    unacked: HashMap<u64, Pending>,
    /// Every sequence number below this has been delivered.
    recv_floor: u64,
    /// Delivered sequence numbers at or above the floor.
    recv_seen: BTreeSet<u64>,
    /// Set when the retry budget is exhausted; fails future operations.
    dead: Option<String>,
}

/// Connection produced by [`ReliabilityChunnel`].
///
/// Note: sequence numbers and deduplication are per *connection*, which in
/// this workspace is per peer (listen-side transports demultiplex by source
/// address before chunnels apply). Wrapping one unconnected socket that
/// talks to many peers with a single `ReliableConn` is not supported.
pub struct ReliableConn<C> {
    inner: Arc<C>,
    cfg: ReliabilityConfig,
    state: Arc<Mutex<RelState>>,
    stats: Arc<ReliableStats>,
    acked: Arc<Notify>,
    /// Woken when the retry budget exhausts, so a blocked `recv` fails
    /// instead of waiting forever on a dead connection.
    dead: Arc<Notify>,
    delivery: tokio::sync::Mutex<mpsc::Receiver<Datagram>>,
}

/// The 9-byte `[DATA][seq]` header, prepended into the frame's headroom.
fn data_header(seq: u64) -> [u8; 9] {
    let mut h = [0u8; 9];
    // check: allow(panic): constant indices into a fixed 9-byte array
    h[0] = DATA;
    // check: allow(panic): constant indices into a fixed 9-byte array
    h[1..9].copy_from_slice(&seq.to_le_bytes());
    h
}

fn ack_frame(seq: u64) -> Vec<u8> {
    let mut f = Vec::with_capacity(9);
    f.push(ACK);
    f.extend_from_slice(&seq.to_le_bytes());
    f
}

fn parse(buf: &[u8]) -> Result<(u8, u64, &[u8]), Error> {
    let Some((&tag, rest)) = buf.split_first() else {
        return Err(Error::Encode("reliability frame too short".into()));
    };
    let Some((seq, payload)) = crate::take_u64_le(rest) else {
        return Err(Error::Encode("reliability frame too short".into()));
    };
    Ok((tag, seq, payload))
}

impl<C> ReliableConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    fn start(inner: C, cfg: ReliabilityConfig) -> Self {
        let inner = Arc::new(inner);
        let state = Arc::new(Mutex::new(RelState {
            next_seq: 0,
            unacked: HashMap::new(),
            recv_floor: 0,
            recv_seen: BTreeSet::new(),
            dead: None,
        }));
        let acked = Arc::new(Notify::new());
        let dead = Arc::new(Notify::new());
        let stats = Arc::new(ReliableStats::new());
        let (delivery_tx, delivery_rx) = mpsc::channel(1024);

        tokio::spawn(pump(
            Arc::downgrade(&inner),
            Arc::clone(&state),
            Arc::clone(&stats),
            Arc::clone(&acked),
            Arc::clone(&dead),
            delivery_tx,
        ));
        tokio::spawn(retransmit(
            Arc::downgrade(&inner),
            Arc::clone(&state),
            Arc::clone(&stats),
            Arc::clone(&acked),
            Arc::clone(&dead),
            cfg,
        ));

        ReliableConn {
            inner,
            cfg,
            state,
            stats,
            acked,
            dead,
            delivery: tokio::sync::Mutex::new(delivery_rx),
        }
    }

    /// This connection's ARQ counters.
    pub fn stats(&self) -> &ReliableStats {
        &self.stats
    }

    /// Number of payloads currently awaiting acknowledgment.
    pub fn in_flight(&self) -> usize {
        self.state.lock().unacked.len()
    }
}

/// Receive pump: acks incoming data, consumes acks, delivers fresh payloads.
async fn pump<C>(
    inner: Weak<C>,
    state: Arc<Mutex<RelState>>,
    stats: Arc<ReliableStats>,
    acked: Arc<Notify>,
    dead: Arc<Notify>,
    delivery: mpsc::Sender<Datagram>,
) where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    loop {
        let conn = match inner.upgrade() {
            Some(c) => c,
            None => return,
        };
        let recvd = conn.recv().await;
        let (from, buf) = match recvd {
            Ok(d) => d,
            Err(e) => {
                if e.is_closed() {
                    // The transport is gone for good: mark the connection
                    // dead so window-blocked senders and blocked receivers
                    // wake with an error instead of waiting on acks that
                    // can never arrive.
                    let newly_dead = {
                        let mut st = state.lock();
                        if st.dead.is_none() {
                            st.dead = Some("transport closed".into());
                            true
                        } else {
                            false
                        }
                    };
                    if newly_dead {
                        stats.dead.incr();
                        tele::event!(
                            tele::Level::Error,
                            "chunnel",
                            "reliable_dead",
                            "why" = "transport closed",
                        );
                    }
                    acked.notify_waiters();
                    dead.notify_waiters();
                    return;
                }
                continue;
            }
        };
        let (tag, seq) = match parse(&buf) {
            Ok((tag, seq, _)) => (tag, seq),
            Err(_) => continue, // garbage from the network: drop
        };
        match tag {
            ACK => {
                let mut st = state.lock();
                st.unacked.remove(&seq);
                drop(st);
                acked.notify_waiters();
            }
            DATA => {
                // Always ack, even duplicates (the first ack may have been
                // lost).
                let _ = conn.send((from.clone(), ack_frame(seq).into())).await;
                let fresh = {
                    let mut st = state.lock();
                    if seq < st.recv_floor || st.recv_seen.contains(&seq) {
                        false
                    } else {
                        st.recv_seen.insert(seq);
                        let mut floor = st.recv_floor;
                        while st.recv_seen.remove(&floor) {
                            floor += 1;
                        }
                        st.recv_floor = floor;
                        true
                    }
                };
                if fresh {
                    stats.delivered.incr();
                    // Hand the application the received frame minus its
                    // header: an O(1) window adjustment, not a copy.
                    let mut payload = buf;
                    payload.strip(9);
                    if delivery.send((from, payload)).await.is_err() {
                        return;
                    }
                } else {
                    stats.duplicates.incr();
                }
            }
            _ => {}
        }
    }
}

/// Retransmit pacer: resends expired payloads, kills the connection when
/// the retry budget runs out.
async fn retransmit<C>(
    inner: Weak<C>,
    state: Arc<Mutex<RelState>>,
    stats: Arc<ReliableStats>,
    acked: Arc<Notify>,
    dead: Arc<Notify>,
    cfg: ReliabilityConfig,
) where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    let tick = cfg.rto / 4;
    // Backed-off RTO values observed per retransmission, for the RTO
    // distribution metric. Resolved once; recording is lock-free.
    let rto_hist = tele::histogram("reliable.rto_us");
    loop {
        tokio::time::sleep(tick).await;
        let conn = match inner.upgrade() {
            Some(c) => c,
            None => return,
        };
        let now = Instant::now();
        let mut to_send = Vec::new();
        {
            let mut st = state.lock();
            if st.dead.is_some() {
                return;
            }
            let mut exhausted = false;
            for (seq, p) in st.unacked.iter_mut() {
                if now >= p.next_retx {
                    if p.retries >= cfg.max_retries {
                        exhausted = true;
                        break;
                    }
                    p.retries += 1;
                    p.rto = (p.rto * 2).min(cfg.rto_max);
                    p.next_retx = now + jittered(p.rto);
                    rto_hist.record(p.rto.as_micros().min(u64::MAX as u128) as u64);
                    // check: allow(alloc): refcount bump — retransmit shares the sent slab
                    to_send.push((*seq, p.addr.clone(), p.frame.clone()));
                }
            }
            if exhausted {
                st.dead = Some(format!("gave up after {} retransmissions", cfg.max_retries));
                drop(st);
                stats.dead.incr();
                tele::event!(
                    tele::Level::Error,
                    "chunnel",
                    "reliable_dead",
                    "why" = "retry budget exhausted",
                    "max_retries" = cfg.max_retries,
                );
                // Wake both blocked senders (window waiters) and blocked
                // receivers: neither will ever make progress again.
                acked.notify_waiters();
                dead.notify_waiters();
                return;
            }
        }
        stats.retransmits.add(to_send.len() as u64);
        for (_seq, addr, frame) in to_send {
            let _ = conn.send((addr, frame)).await;
        }
    }
}

impl<C> ChunnelConnection for ReliableConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Data = Datagram;

    fn send(&self, (addr, payload): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            // Window backpressure.
            loop {
                {
                    let st = self.state.lock();
                    if let Some(why) = &st.dead {
                        return Err(Error::Other(format!("reliable connection dead: {why}")));
                    }
                    if st.unacked.len() < self.cfg.window {
                        break;
                    }
                }
                self.acked.notified().await;
            }
            let (seq, frame) = {
                let mut st = self.state.lock();
                let seq = st.next_seq;
                st.next_seq += 1;
                let mut frame = payload;
                frame.prepend(&data_header(seq));
                st.unacked.insert(
                    seq,
                    Pending {
                        addr: addr.clone(),
                        // check: allow(alloc): refcount bump into the unacked map
                        frame: frame.clone(),
                        next_retx: Instant::now() + jittered(self.cfg.rto),
                        rto: self.cfg.rto,
                        retries: 0,
                    },
                );
                (seq, frame)
            };
            let _ = seq;
            self.stats.sent.incr();
            self.inner.send((addr, frame)).await
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            let mut rx = self.delivery.lock().await;
            loop {
                // Register for the death notification *before* checking, so
                // a death that lands between the check and the select below
                // cannot be missed.
                let died = self.dead.notified();
                if let Some(why) = self.state.lock().dead.clone() {
                    return Err(Error::Other(format!("reliable connection dead: {why}")));
                }
                tokio::select! {
                    d = rx.recv() => {
                        return match d {
                            Some(d) => Ok(d),
                            None => {
                                let st = self.state.lock();
                                match &st.dead {
                                    Some(why) => Err(Error::Other(format!(
                                        "reliable connection dead: {why}"
                                    ))),
                                    None => Err(Error::ConnectionClosed),
                                }
                            }
                        };
                    }
                    _ = died => continue,
                }
            }
        })
    }
}

impl<C> Drain for ReliableConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    /// Resolves once every sent payload has been acknowledged (retransmitting
    /// as needed along the way), so a stack swap cannot strand in-flight
    /// data. Fails if the retry budget exhausts first.
    fn drain(&self) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            loop {
                // Register before checking so an ack (or death) landing
                // between the check and the await cannot be missed.
                let notified = self.acked.notified();
                {
                    let st = self.state.lock();
                    if let Some(why) = &st.dead {
                        return Err(Error::Other(format!("reliable connection dead: {why}")));
                    }
                    if st.unacked.is_empty() {
                        return Ok(());
                    }
                }
                notified.await;
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha::conn::pair;
    use bertha_transport::fault::{FaultChunnel, FaultConfig};

    fn addr() -> Addr {
        Addr::Mem("peer".into())
    }

    async fn reliable_pair(
        cfg: ReliabilityConfig,
        fault: FaultConfig,
    ) -> (
        ProfiledConn<ReliableConn<impl ChunnelConnection<Data = Datagram>>>,
        ProfiledConn<ReliableConn<impl ChunnelConnection<Data = Datagram>>>,
    ) {
        let (a, b) = pair::<Datagram>(4096);
        let fa = FaultChunnel::new(fault).connect_wrap(a).await.unwrap();
        let fb = FaultChunnel::new(fault).connect_wrap(b).await.unwrap();
        let ra = ReliabilityChunnel::new(cfg).connect_wrap(fa).await.unwrap();
        let rb = ReliabilityChunnel::new(cfg).connect_wrap(fb).await.unwrap();
        (ra, rb)
    }

    #[tokio::test]
    async fn lossless_round_trip() {
        let (a, b) = reliable_pair(Default::default(), Default::default()).await;
        a.send((addr(), b"one".into())).await.unwrap();
        let (_, d) = b.recv().await.unwrap();
        assert_eq!(d, b"one");
        b.send((addr(), b"two".into())).await.unwrap();
        let (_, d) = a.recv().await.unwrap();
        assert_eq!(d, b"two");
    }

    #[tokio::test]
    async fn delivers_exactly_once_over_lossy_link() {
        let cfg = ReliabilityConfig {
            rto: Duration::from_millis(20),
            max_retries: 50,
            rto_max: Duration::from_millis(100),
            window: 32,
        };
        let fault = FaultConfig {
            drop: 0.3,
            duplicate: 0.2,
            seed: 1234,
            ..Default::default()
        };
        let (a, b) = reliable_pair(cfg, fault).await;

        const N: usize = 100;
        let sender = tokio::spawn(async move {
            for i in 0..N as u32 {
                a.send((addr(), i.to_le_bytes().into())).await.unwrap();
            }
            a // keep alive until the receiver is done
        });

        let mut got = Vec::with_capacity(N);
        for _ in 0..N {
            let (_, d) = tokio::time::timeout(Duration::from_secs(30), b.recv())
                .await
                .expect("should deliver despite loss")
                .unwrap();
            got.push(u32::from_le_bytes(d[..].try_into().unwrap()));
        }
        got.sort_unstable();
        let expect: Vec<u32> = (0..N as u32).collect();
        assert_eq!(got, expect, "exactly once, no dups, no losses");
        let a = sender.await.unwrap();
        // Counters agree with ground truth: every payload accepted once,
        // every delivery counted once, and a 30% lossy link forced the
        // pacer to retransmit at least something.
        assert_eq!(a.stats().sent.get(), N as u64);
        assert_eq!(b.stats().delivered.get(), N as u64);
        assert!(
            a.stats().retransmits.get() > 0,
            "a 30% lossy link must force retransmissions"
        );
        drop(a);
    }

    #[tokio::test]
    async fn gives_up_when_peer_is_gone() {
        let (a, b) = pair::<Datagram>(64);
        drop(b);
        let cfg = ReliabilityConfig {
            rto: Duration::from_millis(10),
            max_retries: 3,
            rto_max: Duration::from_millis(40),
            window: 4,
        };
        let ra = ReliabilityChunnel::new(cfg).connect_wrap(a).await.unwrap();
        // The first send may succeed (buffered); the connection must
        // eventually report itself dead.
        let _ = ra.send((addr(), vec![1].into())).await;
        let res = tokio::time::timeout(Duration::from_secs(5), ra.recv()).await;
        assert!(
            matches!(res, Ok(Err(_))),
            "recv must fail once retries exhaust"
        );
    }

    #[tokio::test]
    async fn window_backpressure_releases_on_ack() {
        let cfg = ReliabilityConfig {
            rto: Duration::from_millis(50),
            max_retries: 20,
            rto_max: Duration::from_millis(200),
            window: 2,
        };
        let (a, b) = reliable_pair(cfg, Default::default()).await;
        for i in 0..10u8 {
            a.send((addr(), vec![i].into())).await.unwrap();
        }
        // All ten arrive despite window = 2.
        for i in 0..10u8 {
            let (_, d) = b.recv().await.unwrap();
            assert_eq!(d, vec![i]);
        }
        assert_eq!(a.in_flight(), 0);
    }

    #[tokio::test]
    async fn drain_waits_for_acks_then_resolves() {
        let cfg = ReliabilityConfig {
            rto: Duration::from_millis(20),
            max_retries: 50,
            rto_max: Duration::from_millis(100),
            window: 32,
        };
        let fault = FaultConfig {
            drop: 0.3,
            seed: 77,
            ..Default::default()
        };
        let (a, b) = reliable_pair(cfg, fault).await;
        for i in 0..20u8 {
            a.send((addr(), vec![i].into())).await.unwrap();
        }
        // The peer's pump acks in the background; drain must outlast the
        // losses and resolve only once nothing is in flight.
        tokio::time::timeout(Duration::from_secs(30), a.drain())
            .await
            .expect("drain should resolve")
            .unwrap();
        assert_eq!(a.in_flight(), 0);
        for i in 0..20u8 {
            let (_, d) = b.recv().await.unwrap();
            assert_eq!(d, vec![i]);
        }
    }

    #[tokio::test]
    async fn closed_transport_wakes_blocked_recv() {
        let (a, b) = pair::<Datagram>(64);
        let ra = ReliabilityChunnel::default().connect_wrap(a).await.unwrap();
        let blocked = tokio::spawn(async move { ra.recv().await });
        tokio::time::sleep(Duration::from_millis(20)).await;
        drop(b); // transport dies under a blocked recv
        let res = tokio::time::timeout(Duration::from_secs(5), blocked)
            .await
            .expect("blocked recv must wake when the transport closes")
            .unwrap();
        assert!(res.is_err(), "recv on a closed transport must error");
    }

    #[tokio::test]
    async fn garbage_frames_are_ignored() {
        let (a, b) = pair::<Datagram>(64);
        let ra = ReliabilityChunnel::default().connect_wrap(a).await.unwrap();
        b.send((addr(), vec![1, 2].into())).await.unwrap(); // too short
        b.send((addr(), vec![0x7f; 16].into())).await.unwrap(); // unknown tag
        ra.send((addr(), b"ok".into())).await.unwrap();
        let (_, d) = b.recv().await.unwrap();
        let (tag, seq, payload) = parse(&d).unwrap();
        assert_eq!((tag, seq, payload), (DATA, 0, b"ok".as_slice()));
    }
}

//! Serialization chunnel: typed messages over bincode (§3.2).
//!
//! "The use of a serialization Chunnel changes the connection's interface:
//! applications send and receive objects rather than bytes." Modeling
//! serialization as a chunnel lets negotiation substitute faster
//! implementations — including hardware-accelerated ones — without the
//! application rebuilding (§3.2's serialization example).

use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain, ProfiledConn};
use bertha::negotiate::{guid, Negotiate, NegotiateSlot, Offer, SlotApply};
use bertha::{Addr, Chunnel, Error};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::marker::PhantomData;

/// Serialize `T` to/from the byte level with bincode, the paper
/// prototype's serializer ("serialization from the widely-used bincode
/// crate", §5).
pub struct SerializeChunnel<T> {
    _t: PhantomData<fn() -> T>,
}

impl<T> Default for SerializeChunnel<T> {
    fn default() -> Self {
        SerializeChunnel { _t: PhantomData }
    }
}

impl<T> Clone for SerializeChunnel<T> {
    fn clone(&self) -> Self {
        SerializeChunnel { _t: PhantomData }
    }
}

impl<T> std::fmt::Debug for SerializeChunnel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SerializeChunnel")
    }
}

impl<T> Negotiate for SerializeChunnel<T> {
    const CAPABILITY: u64 = guid("bertha/serialize");
    const IMPL: u64 = guid("bertha/serialize/bincode");
    const NAME: &'static str = "serialize/bincode";
}

// Hand-written slot impls (the `negotiable!` macro covers only non-generic
// chunnels).
impl<T> NegotiateSlot for SerializeChunnel<T> {
    fn slot_offers(&self) -> Vec<Offer> {
        vec![Offer::from_chunnel(self)]
    }
}

impl<T, InC> SlotApply<InC> for SerializeChunnel<T>
where
    T: Serialize + DeserializeOwned + Send + 'static,
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Applied = ProfiledConn<SerializeConn<T, InC>>;

    fn slot_apply(
        &self,
        pick: Offer,
        nonce: Vec<u8>,
        inner: InC,
    ) -> BoxFut<'static, Result<Self::Applied, Error>> {
        if pick.capability != Self::CAPABILITY {
            let msg = format!("pick {} does not match serialize slot", pick.name);
            return Box::pin(async move { Err(Error::Negotiation(msg)) });
        }
        self.picked(&pick, &nonce);
        self.connect_wrap(inner)
    }
}

impl<T, InC> Chunnel<InC> for SerializeChunnel<T>
where
    T: Serialize + DeserializeOwned + Send + 'static,
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Connection = ProfiledConn<SerializeConn<T, InC>>;

    fn connect_wrap(&self, inner: InC) -> BoxFut<'static, Result<Self::Connection, Error>> {
        Box::pin(async move {
            let conn = SerializeConn {
                inner,
                _t: PhantomData,
            };
            Ok(ProfiledConn::new(Self::NAME, conn))
        })
    }
}

/// Connection produced by [`SerializeChunnel`]: data is `(Addr, T)`.
pub struct SerializeConn<T, C> {
    inner: C,
    _t: PhantomData<fn() -> T>,
}

impl<T, C> ChunnelConnection for SerializeConn<T, C>
where
    T: Serialize + DeserializeOwned + Send + 'static,
    C: ChunnelConnection<Data = Datagram> + Send + Sync,
{
    type Data = (Addr, T);

    fn send(&self, (addr, msg): (Addr, T)) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            let buf = bincode::serialize(&msg)?;
            self.inner.send((addr, buf.into())).await
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<(Addr, T), Error>> {
        Box::pin(async move {
            let (from, buf) = self.inner.recv().await?;
            let msg = bincode::deserialize(&buf)?;
            Ok((from, msg))
        })
    }
}

/// Stateless on the send path: draining is entirely the inner layer's
/// concern.
impl<T, C> Drain for SerializeConn<T, C>
where
    C: Drain,
{
    fn drain(&self) -> BoxFut<'_, Result<(), Error>> {
        self.inner.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha::conn::pair;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
    struct KvOp {
        key: String,
        value: Option<Vec<u8>>,
        version: u32,
    }

    fn addr() -> Addr {
        Addr::Mem("peer".into())
    }

    #[tokio::test]
    async fn typed_round_trip() {
        let (a, b) = pair::<Datagram>(8);
        let sa = SerializeChunnel::<KvOp>::default()
            .connect_wrap(a)
            .await
            .unwrap();
        let sb = SerializeChunnel::<KvOp>::default()
            .connect_wrap(b)
            .await
            .unwrap();
        let msg = KvOp {
            key: "user:42".into(),
            value: Some(vec![1, 2, 3]),
            version: 9,
        };
        sa.send((addr(), msg.clone())).await.unwrap();
        let (_, got) = sb.recv().await.unwrap();
        assert_eq!(got, msg);
    }

    #[tokio::test]
    async fn garbage_bytes_fail_decode() {
        let (a, b) = pair::<Datagram>(8);
        let sb = SerializeChunnel::<KvOp>::default()
            .connect_wrap(b)
            .await
            .unwrap();
        a.send((addr(), vec![0xff; 3].into())).await.unwrap();
        assert!(matches!(sb.recv().await, Err(Error::Encode(_))));
    }

    #[tokio::test]
    async fn slot_apply_checks_capability() {
        let (a, _b) = pair::<Datagram>(8);
        let c = SerializeChunnel::<KvOp>::default();
        let mut pick = Offer::from_chunnel(&c);
        pick.capability = guid("bogus");
        assert!(c.slot_apply(pick, vec![], a).await.is_err());
    }
}

//! Encryption chunnel — a **toy** stream cipher.
//!
//! # Security
//!
//! **This is not a secure cipher.** It exists so the workspace can model the
//! paper's §6 example — an `encrypt |> http2 |> tcp` pipeline whose
//! encryption stage can be offloaded to a SmartNIC or fused into a TLS
//! offload — with a software stage that touches every payload byte at a
//! realistic cost. The experiments measure data movement and placement, not
//! cryptography; substituting a real AEAD would not change them. Do not use
//! this module to protect data.
//!
//! Mechanism: a per-message random 8-byte nonce seeds a keyed xorshift
//! keystream XORed over the payload, with a 4-byte keyed checksum so
//! tampering (or a wrong key) is detected.

use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain, ProfiledConn};
use bertha::negotiate::{guid, Negotiate};
use bertha::{Chunnel, Error};
use rand::RngCore;

/// Key bytes for [`CryptChunnel`].
pub type Key = [u8; 32];

/// The toy encryption chunnel. See the module docs — **not secure**.
#[derive(Clone, Debug)]
pub struct CryptChunnel {
    key: Key,
}

impl CryptChunnel {
    /// Encrypt with a pre-shared key. Both endpoints must use the same key.
    pub fn new(key: Key) -> Self {
        CryptChunnel { key }
    }

    /// A fixed demonstration key.
    pub fn demo() -> Self {
        CryptChunnel { key: [0x42; 32] }
    }
}

impl Negotiate for CryptChunnel {
    const CAPABILITY: u64 = guid("bertha/encrypt");
    const IMPL: u64 = guid("bertha/encrypt/toy-stream");
    const NAME: &'static str = "encrypt/toy-stream";
}

bertha::negotiable!(CryptChunnel);

fn keystream_word(state: &mut u64) -> u64 {
    // xorshift64*; fine for a keystream-shaped workload, useless for
    // security.
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn seed_from(key: &Key, nonce: &[u8; 8]) -> u64 {
    let mut seed = u64::from_le_bytes(nonce[..8].try_into().unwrap());
    for chunk in key.chunks(8) {
        seed ^= u64::from_le_bytes(chunk.try_into().unwrap()).rotate_left(17);
        seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    }
    seed
}

fn apply_keystream(seed: u64, buf: &mut [u8]) {
    let mut state = seed;
    for chunk in buf.chunks_mut(8) {
        let ks = keystream_word(&mut state).to_le_bytes();
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

fn checksum(seed: u64, buf: &[u8]) -> u32 {
    let mut acc = seed ^ 0xdead_beef_cafe_f00d;
    for chunk in buf.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        acc = (acc ^ u64::from_le_bytes(w)).wrapping_mul(0x100_0000_01b3);
    }
    (acc >> 32) as u32 ^ acc as u32
}

/// Seal a payload: `[nonce: 8][ciphertext][tag: 4]`.
pub fn seal(key: &Key, payload: &[u8]) -> Vec<u8> {
    let mut nonce = [0u8; 8];
    rand::thread_rng().fill_bytes(&mut nonce);
    let seed = seed_from(key, &nonce);
    let mut out = Vec::with_capacity(8 + payload.len() + 4);
    out.extend_from_slice(&nonce);
    let body_start = out.len();
    out.extend_from_slice(payload);
    apply_keystream(seed, &mut out[body_start..]);
    let tag = checksum(seed, payload);
    out.extend_from_slice(&tag.to_le_bytes());
    out
}

/// Open a sealed payload, verifying the tag.
pub fn open(key: &Key, sealed: &[u8]) -> Result<Vec<u8>, Error> {
    if sealed.len() < 12 {
        return Err(Error::Encode("sealed payload too short".into()));
    }
    let nonce: [u8; 8] = sealed[..8].try_into().unwrap();
    let tag = u32::from_le_bytes(sealed[sealed.len() - 4..].try_into().unwrap());
    let seed = seed_from(key, &nonce);
    let mut body = sealed[8..sealed.len() - 4].to_vec();
    apply_keystream(seed, &mut body);
    if checksum(seed, &body) != tag {
        return Err(Error::Encode(
            "ciphertext checksum mismatch (tampering or wrong key)".into(),
        ));
    }
    Ok(body)
}

impl<InC> Chunnel<InC> for CryptChunnel
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Connection = ProfiledConn<CryptConn<InC>>;

    fn connect_wrap(&self, inner: InC) -> BoxFut<'static, Result<Self::Connection, Error>> {
        let key = self.key;
        Box::pin(async move { Ok(ProfiledConn::datagram(Self::NAME, CryptConn { inner, key })) })
    }
}

/// Connection produced by [`CryptChunnel`].
pub struct CryptConn<C> {
    inner: C,
    key: Key,
}

impl<C> ChunnelConnection for CryptConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync,
{
    type Data = Datagram;

    fn send(&self, (addr, payload): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            // In-place seal: encrypt the frame's bytes where they sit, then
            // grow into the reserved headroom (nonce) and tailroom (tag).
            let mut frame = payload;
            let mut nonce = [0u8; 8];
            rand::thread_rng().fill_bytes(&mut nonce);
            let seed = seed_from(&self.key, &nonce);
            let tag = checksum(seed, &frame);
            apply_keystream(seed, &mut frame);
            frame.prepend(&nonce);
            frame.extend_from_slice(&tag.to_le_bytes());
            self.inner.send((addr, frame)).await
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            let (from, mut buf) = self.inner.recv().await?;
            if buf.len() < 12 {
                return Err(Error::Encode("sealed payload too short".into()));
            }
            let nonce: [u8; 8] = buf[..8].try_into().unwrap();
            let tag = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
            let seed = seed_from(&self.key, &nonce);
            // Trim framing with O(1) window adjustments, then decrypt the
            // ciphertext in place.
            buf.strip(8);
            let body_len = buf.len() - 4;
            buf.truncate(body_len);
            apply_keystream(seed, &mut buf);
            if checksum(seed, &buf) != tag {
                return Err(Error::Encode(
                    "ciphertext checksum mismatch (tampering or wrong key)".into(),
                ));
            }
            Ok((from, buf))
        })
    }
}

/// Stateless on the send path: draining is entirely the inner layer's
/// concern.
impl<C> Drain for CryptConn<C>
where
    C: Drain,
{
    fn drain(&self) -> BoxFut<'_, Result<(), Error>> {
        self.inner.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha::conn::pair;
    use bertha::Addr;
    use proptest::prelude::*;

    #[test]
    fn seal_open_round_trip() {
        let key = [7u8; 32];
        let msg = b"attack at dawn";
        let sealed = seal(&key, msg);
        assert_ne!(&sealed[8..8 + msg.len()], msg, "payload must be masked");
        assert_eq!(open(&key, &sealed).unwrap(), msg);
    }

    #[test]
    fn wrong_key_detected() {
        let sealed = seal(&[1u8; 32], b"hello");
        assert!(open(&[2u8; 32], &sealed).is_err());
    }

    #[test]
    fn tampering_detected() {
        let key = [9u8; 32];
        let mut sealed = seal(&key, b"hello world");
        sealed[10] ^= 0x80;
        assert!(open(&key, &sealed).is_err());
    }

    #[test]
    fn nonces_differ_between_messages() {
        let key = [3u8; 32];
        let a = seal(&key, b"same");
        let b = seal(&key, b"same");
        assert_ne!(a, b, "per-message nonce must randomize ciphertexts");
    }

    #[tokio::test]
    async fn chunnel_round_trip() {
        let (a, b) = pair::<Datagram>(8);
        let key = [5u8; 32];
        let ca = CryptChunnel::new(key).connect_wrap(a).await.unwrap();
        let cb = CryptChunnel::new(key).connect_wrap(b).await.unwrap();
        let addr = Addr::Mem("peer".into());
        ca.send((addr, b"secret".into())).await.unwrap();
        let (_, d) = cb.recv().await.unwrap();
        assert_eq!(d, b"secret");
    }

    proptest! {
        #[test]
        fn round_trips_arbitrary(payload in proptest::collection::vec(any::<u8>(), 0..2048), key in any::<[u8; 32]>()) {
            let sealed = seal(&key, &payload);
            prop_assert_eq!(open(&key, &sealed).unwrap(), payload);
        }

        #[test]
        fn open_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = open(&[0u8; 32], &garbage);
        }
    }
}

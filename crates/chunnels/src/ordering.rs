//! Ordering chunnel: in-order delivery via sequence numbers and a reorder
//! buffer.
//!
//! Tags each outgoing payload with a sequence number; the receive side
//! buffers out-of-order arrivals and delivers contiguously. It does not
//! retransmit: over a lossy transport, compose above
//! [`reliable`](crate::reliable) (`wrap!(ordering() |> reliable())`), or
//! accept that a lost datagram stalls delivery until the buffer cap evicts.

use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain, ProfiledConn};
use bertha::negotiate::{guid, Negotiate};
use bertha::{Chunnel, Error};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use tokio::sync::Notify;

/// The ordering chunnel. See the module docs.
#[derive(Clone, Debug)]
pub struct OrderingChunnel {
    /// Maximum buffered out-of-order payloads before the hole is declared
    /// lost and delivery skips past it.
    pub max_buffer: usize,
}

impl Default for OrderingChunnel {
    fn default() -> Self {
        OrderingChunnel { max_buffer: 1024 }
    }
}

impl OrderingChunnel {
    /// Ordering with an explicit reorder-buffer cap.
    pub fn new(max_buffer: usize) -> Self {
        OrderingChunnel { max_buffer }
    }
}

impl Negotiate for OrderingChunnel {
    const CAPABILITY: u64 = guid("bertha/ordering");
    const IMPL: u64 = guid("bertha/ordering/buffer");
    const NAME: &'static str = "ordering/buffer";
}

bertha::negotiable!(OrderingChunnel);

impl<InC> Chunnel<InC> for OrderingChunnel
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Connection = ProfiledConn<OrderedConn<InC>>;

    fn connect_wrap(&self, inner: InC) -> BoxFut<'static, Result<Self::Connection, Error>> {
        let max_buffer = self.max_buffer;
        Box::pin(async move {
            let conn = OrderedConn {
                inner: Arc::new(inner),
                max_buffer,
                state: Mutex::new(OrderState {
                    next_send: 0,
                    next_deliver: 0,
                    buffer: BTreeMap::new(),
                }),
                arrived: Notify::new(),
            };
            Ok(ProfiledConn::datagram(Self::NAME, conn))
        })
    }
}

struct OrderState {
    next_send: u64,
    next_deliver: u64,
    buffer: BTreeMap<u64, Datagram>,
}

/// Connection produced by [`OrderingChunnel`].
pub struct OrderedConn<C> {
    inner: Arc<C>,
    max_buffer: usize,
    state: Mutex<OrderState>,
    arrived: Notify,
}

impl<C> ChunnelConnection for OrderedConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Data = Datagram;

    fn send(&self, (addr, payload): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            let seq = {
                let mut st = self.state.lock();
                let s = st.next_send;
                st.next_send += 1;
                s
            };
            // Sequence header lands in the frame's reserved headroom.
            let mut framed = payload;
            framed.prepend(&seq.to_le_bytes());
            self.inner.send((addr, framed)).await
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            loop {
                // Deliver from the buffer if the next payload is ready.
                {
                    let mut st = self.state.lock();
                    let next = st.next_deliver;
                    if let Some(d) = st.buffer.remove(&next) {
                        st.next_deliver += 1;
                        return Ok(d);
                    }
                    // Buffer overflowing: the gap is presumed lost; skip to
                    // the earliest buffered payload.
                    if st.buffer.len() >= self.max_buffer {
                        if let Some((seq, d)) = st.buffer.pop_first() {
                            st.next_deliver = seq + 1;
                            return Ok(d);
                        }
                    }
                }

                let (from, mut buf) = self.inner.recv().await?;
                let Some((seq, _)) = crate::take_u64_le(&buf) else {
                    return Err(Error::Encode("ordering frame too short".into()));
                };
                // O(1) window adjustment, not a copy.
                buf.strip(8);
                let payload = buf;
                let mut st = self.state.lock();
                if seq < st.next_deliver {
                    continue; // stale duplicate
                }
                if seq == st.next_deliver {
                    st.next_deliver += 1;
                    // Anything contiguous behind it will be picked up on
                    // the next loop iteration.
                    self.arrived.notify_waiters();
                    return Ok((from, payload));
                }
                st.buffer.insert(seq, (from, payload));
            }
        })
    }
}

/// Stateless on the send path: draining is entirely the inner layer's
/// concern.
impl<C> Drain for OrderedConn<C>
where
    C: Drain,
{
    fn drain(&self) -> BoxFut<'_, Result<(), Error>> {
        self.inner.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha::conn::pair;
    use bertha::Addr;
    use bertha_transport::fault::{FaultChunnel, FaultConfig};

    fn addr() -> Addr {
        Addr::Mem("peer".into())
    }

    #[tokio::test]
    async fn in_order_without_faults() {
        let (a, b) = pair::<Datagram>(64);
        let oa = OrderingChunnel::default().connect_wrap(a).await.unwrap();
        let ob = OrderingChunnel::default().connect_wrap(b).await.unwrap();
        for i in 0..20u8 {
            oa.send((addr(), vec![i].into())).await.unwrap();
        }
        for i in 0..20u8 {
            let (_, d) = ob.recv().await.unwrap();
            assert_eq!(d, vec![i]);
        }
    }

    #[tokio::test]
    async fn restores_order_over_reordering_link() {
        let (a, b) = pair::<Datagram>(512);
        let fa = FaultChunnel::new(FaultConfig {
            reorder: 0.5,
            seed: 21,
            ..Default::default()
        })
        .connect_wrap(a)
        .await
        .unwrap();
        let oa = OrderingChunnel::default().connect_wrap(fa).await.unwrap();
        let ob = OrderingChunnel::default().connect_wrap(b).await.unwrap();

        const N: u32 = 200;
        for i in 0..N {
            oa.send((addr(), i.to_le_bytes().into())).await.unwrap();
        }
        for i in 0..N {
            let (_, d) = ob.recv().await.unwrap();
            assert_eq!(u32::from_le_bytes(d[..].try_into().unwrap()), i);
        }
    }

    #[tokio::test]
    async fn buffer_cap_skips_lost_gap() {
        let (a, b) = pair::<Datagram>(64);
        let ob = OrderingChunnel::new(4).connect_wrap(b).await.unwrap();
        // Send seqs 1..=5 (seq 0 never arrives: a permanent gap).
        for seq in 1..=5u64 {
            let mut f = seq.to_le_bytes().to_vec();
            f.push(seq as u8);
            a.send((addr(), f.into())).await.unwrap();
        }
        // With max_buffer = 4, the gap is eventually declared lost and
        // delivery resumes from seq 1.
        let (_, d) = ob.recv().await.unwrap();
        assert_eq!(d, vec![1]);
        let (_, d) = ob.recv().await.unwrap();
        assert_eq!(d, vec![2]);
    }

    #[tokio::test]
    async fn duplicate_frames_dropped() {
        let (a, b) = pair::<Datagram>(64);
        let ob = OrderingChunnel::default().connect_wrap(b).await.unwrap();
        let mut f0 = 0u64.to_le_bytes().to_vec();
        f0.push(7);
        a.send((addr(), f0.clone().into())).await.unwrap();
        a.send((addr(), f0.into())).await.unwrap(); // duplicate
        let mut f1 = 1u64.to_le_bytes().to_vec();
        f1.push(8);
        a.send((addr(), f1.into())).await.unwrap();
        let (_, d) = ob.recv().await.unwrap();
        assert_eq!(d, vec![7]);
        let (_, d) = ob.recv().await.unwrap();
        assert_eq!(d, vec![8], "duplicate must not be redelivered");
    }
}

//! Tracing chunnel: stamp data frames with the connection's trace context.
//!
//! Negotiation establishes a per-connection [`TraceContext`] (both
//! endpoints share one trace id; see `bertha_telemetry::tracectx`). This
//! chunnel carries that context onto the data path: when the connection's
//! trace is *sampled*, every sent frame is prefixed with a fresh child
//! span of the connection context, so a cross-host collector can stitch
//! per-message timings into the negotiation trace. Unsampled connections
//! (the overwhelming majority at the default 1-in-64 rate,
//! `BERTHA_TRACE_SAMPLE`) send a one-byte plain prefix and skip all event
//! emission, keeping the hot path within the no-sink overhead budget.
//!
//! The chunnel learns its context via the [`Negotiate::picked`] hook: the
//! handshake binds the negotiated nonce to the connection's trace context
//! (`bertha_telemetry::bind_nonce`), and `picked` looks the nonce up. A
//! stack that never negotiated (manual `connect_wrap`) sends plain frames.
//!
//! Wire format: `[0x00][payload]` plain, `[0x01][25-byte context][payload]`
//! traced.

use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain, ProfiledConn};
use bertha::negotiate::{guid, Negotiate, Offer};
use bertha::{Chunnel, Error};
use bertha_telemetry as tele;
use parking_lot::Mutex;

use bertha::negotiate::wire::{TRACING_PLAIN as PLAIN, TRACING_TRACED as TRACED};

/// The tracing chunnel. See the module docs.
///
/// Each negotiation application gets a fresh cell (cloning resets it), so
/// one `TracingChunnel` value in a server stack does not leak a previous
/// connection's context into the next.
#[derive(Debug, Default)]
pub struct TracingChunnel {
    ctx: Mutex<Option<tele::TraceContext>>,
}

impl Clone for TracingChunnel {
    fn clone(&self) -> Self {
        TracingChunnel::default()
    }
}

impl Negotiate for TracingChunnel {
    const CAPABILITY: u64 = guid("bertha/tracing");
    const IMPL: u64 = guid("bertha/tracing/inline");
    const NAME: &'static str = "tracing/inline";

    fn picked(&self, _pick: &Offer, nonce: &[u8]) {
        *self.ctx.lock() = tele::nonce_context(nonce);
    }
}

bertha::negotiable!(TracingChunnel);

/// Per-connection tracing counters, mirrored into the global registry
/// (`tracing.*` metrics).
#[derive(Debug)]
pub struct TracingStats {
    /// Frames sent with a trace-context prefix (sampled connections).
    pub frames_stamped: tele::MirroredCounter,
    /// Frames sent with the plain one-byte prefix.
    pub frames_plain: tele::MirroredCounter,
    /// Received frames that carried a trace context.
    pub frames_traced_recv: tele::MirroredCounter,
}

impl TracingStats {
    fn new() -> Self {
        TracingStats {
            frames_stamped: tele::MirroredCounter::new("tracing.frames_stamped"),
            frames_plain: tele::MirroredCounter::new("tracing.frames_plain"),
            frames_traced_recv: tele::MirroredCounter::new("tracing.frames_traced_recv"),
        }
    }
}

/// Connection produced by [`TracingChunnel`].
pub struct TracingConn<C> {
    inner: C,
    ctx: Option<tele::TraceContext>,
    stats: TracingStats,
}

impl<C> TracingConn<C> {
    /// This connection's tracing counters.
    pub fn stats(&self) -> &TracingStats {
        &self.stats
    }

    /// The trace context this connection stamps (when sampled).
    pub fn context(&self) -> Option<tele::TraceContext> {
        self.ctx
    }
}

impl<InC> Chunnel<InC> for TracingChunnel
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Connection = ProfiledConn<TracingConn<InC>>;

    fn connect_wrap(&self, inner: InC) -> BoxFut<'static, Result<Self::Connection, Error>> {
        let ctx = *self.ctx.lock();
        Box::pin(async move {
            let conn = TracingConn {
                inner,
                ctx,
                stats: TracingStats::new(),
            };
            Ok(ProfiledConn::datagram(Self::NAME, conn))
        })
    }
}

impl<C> ChunnelConnection for TracingConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Data = Datagram;

    fn send(&self, (addr, payload): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            let mut span = None;
            let framed = match &self.ctx {
                Some(ctx) if ctx.sampled => {
                    // One child span per frame: the collector sees each
                    // message as a leaf under the connection's span.
                    let fctx = ctx.child();
                    let plen = payload.len() as u64;
                    // Tag byte and trace context land in the frame's
                    // reserved headroom.
                    let mut hdr = [0u8; 1 + tele::tracectx::WIRE_LEN];
                    // check: allow(panic): constant indices into a fixed-size array
                    hdr[0] = TRACED;
                    // check: allow(panic): constant indices into a fixed-size array
                    hdr[1..].copy_from_slice(&fctx.encode());
                    let mut v = payload;
                    v.prepend(&hdr);
                    self.stats.frames_stamped.incr();
                    tele::event!(
                        tele::Level::Debug,
                        "chunnel",
                        "traced_send",
                        "trace_id" = fctx.trace_hex(),
                        "span_id" = fctx.span_id,
                        "parent_span_id" = ctx.span_id,
                        "len" = plen,
                    );
                    span = Some((fctx, ctx.span_id, std::time::Instant::now()));
                    v
                }
                _ => {
                    let mut v = payload;
                    v.prepend(&[PLAIN]);
                    self.stats.frames_plain.incr();
                    v
                }
            };
            let len = framed.len() as u64;
            let res = self.inner.send((addr, framed)).await;
            // The frame's wire span doubles as its send span in the
            // assembled tree, a leaf under the connection span.
            if let Some((fctx, parent, start)) = span {
                tele::span::record_local(
                    "chunnel.send",
                    &fctx,
                    parent,
                    start,
                    if res.is_ok() {
                        tele::span::SpanStatus::Ok
                    } else {
                        tele::span::SpanStatus::Failed
                    },
                    &[("len", len.to_string())],
                );
            }
            res
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            let start = std::time::Instant::now();
            let (from, mut buf) = self.inner.recv().await?;
            match buf.first().copied() {
                Some(PLAIN) => {
                    // O(1) window adjustment, not a copy.
                    buf.strip(1);
                    Ok((from, buf))
                }
                Some(TRACED) => {
                    // check: allow(panic): first() matched, so the frame has a byte 0
                    let Some(fctx) = tele::TraceContext::decode(&buf[1..]) else {
                        return Err(Error::Encode("truncated trace context".into()));
                    };
                    // `decode` validated the length, so the strip is in
                    // bounds.
                    buf.strip(1 + tele::tracectx::WIRE_LEN);
                    let payload = buf;
                    self.stats.frames_traced_recv.incr();
                    tele::event!(
                        tele::Level::Debug,
                        "chunnel",
                        "traced_recv",
                        "trace_id" = fctx.trace_hex(),
                        "parent_span_id" = fctx.span_id,
                        "len" = payload.len() as u64,
                    );
                    // The receive side's half of the frame, a child of the
                    // wire span that arrived — the per-frame cross-host
                    // link. Call-to-return timing, like the profiler: it
                    // includes time blocked waiting for the frame.
                    tele::span::record_local(
                        "chunnel.recv",
                        &fctx.child(),
                        fctx.span_id,
                        start,
                        tele::span::SpanStatus::Ok,
                        &[("len", payload.len().to_string())],
                    );
                    Ok((from, payload))
                }
                _ => Err(Error::Encode("bad tracing framing".into())),
            }
        })
    }
}

impl<C> Drain for TracingConn<C>
where
    C: Drain,
{
    fn drain(&self) -> BoxFut<'_, Result<(), Error>> {
        self.inner.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha::conn::pair;

    fn conn_with(
        ctx: Option<tele::TraceContext>,
    ) -> (
        TracingConn<impl ChunnelConnection<Data = Datagram>>,
        TracingConn<impl ChunnelConnection<Data = Datagram>>,
    ) {
        let (a, b) = pair::<Datagram>(16);
        (
            TracingConn {
                inner: a,
                ctx,
                stats: TracingStats::new(),
            },
            TracingConn {
                inner: b,
                ctx: None,
                stats: TracingStats::new(),
            },
        )
    }

    #[tokio::test]
    async fn plain_frames_without_context() {
        let (tx, rx) = conn_with(None);
        let addr = bertha::Addr::Mem("t".into());
        tx.send((addr, b"hello".into())).await.unwrap();
        let (_, d) = rx.recv().await.unwrap();
        assert_eq!(d, b"hello");
        assert_eq!(tx.stats().frames_plain.get(), 1);
        assert_eq!(tx.stats().frames_stamped.get(), 0);
        assert_eq!(rx.stats().frames_traced_recv.get(), 0);
    }

    #[tokio::test]
    async fn sampled_context_stamps_frames() {
        let ctx = tele::TraceContext {
            trace_id: 0xfeed,
            span_id: 7,
            sampled: true,
        };
        let (tx, rx) = conn_with(Some(ctx));
        let addr = bertha::Addr::Mem("t".into());
        tx.send((addr, b"stamped".into())).await.unwrap();
        let (_, d) = rx.recv().await.unwrap();
        assert_eq!(d, b"stamped");
        assert_eq!(tx.stats().frames_stamped.get(), 1);
        assert_eq!(rx.stats().frames_traced_recv.get(), 1);
    }

    #[tokio::test]
    async fn unsampled_context_sends_plain() {
        let ctx = tele::TraceContext {
            trace_id: 0xfeed,
            span_id: 7,
            sampled: false,
        };
        let (tx, rx) = conn_with(Some(ctx));
        let addr = bertha::Addr::Mem("t".into());
        tx.send((addr, b"quiet".into())).await.unwrap();
        let (_, d) = rx.recv().await.unwrap();
        assert_eq!(d, b"quiet");
        assert_eq!(tx.stats().frames_plain.get(), 1);
        assert_eq!(tx.stats().frames_stamped.get(), 0);
    }

    #[test]
    fn picked_reads_nonce_binding() {
        let ctx = tele::TraceContext {
            trace_id: 0xabcdef,
            span_id: 42,
            sampled: true,
        };
        let nonce = b"tracing-test-nonce".to_vec();
        tele::bind_nonce(&nonce, ctx);
        let ch = TracingChunnel::default();
        ch.picked(&Offer::from_chunnel(&ch), &nonce);
        assert_eq!(ch.ctx.lock().map(|c| c.trace_id), Some(0xabcdef));
        // Cloning (a fresh negotiation application) resets the cell.
        assert!(ch.clone().ctx.lock().is_none());
    }
}

//! Fragmentation chunnel: carry payloads larger than the transport's
//! datagram limit.
//!
//! Splits payloads into MTU-sized fragments, each tagged with a message id
//! and fragment index, and reassembles on the receive side. Incomplete
//! messages are evicted after a timeout so a lost fragment cannot pin
//! memory forever (for lossless delivery compose above
//! [`reliable`](crate::reliable)).
//!
//! Wire format: `[msg_id: u64][idx: u16][total: u16][payload]`.

use bertha::buf::Frame;
use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain, ProfiledConn};
use bertha::negotiate::{guid, Negotiate};
use bertha::{Chunnel, Error};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const HDR: usize = 8 + 2 + 2;

/// Fragmentation parameters.
#[derive(Clone, Copy, Debug)]
pub struct FragConfig {
    /// Maximum payload bytes per fragment (excluding the header).
    pub mtu: usize,
    /// How long a partially-reassembled message may wait for the rest.
    pub reassembly_timeout: Duration,
}

impl Default for FragConfig {
    fn default() -> Self {
        FragConfig {
            mtu: 1400,
            reassembly_timeout: Duration::from_secs(5),
        }
    }
}

/// The fragmentation chunnel. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct FragChunnel {
    cfg: FragConfig,
}

impl FragChunnel {
    /// Fragmentation with explicit parameters.
    pub fn new(cfg: FragConfig) -> Self {
        FragChunnel { cfg }
    }
}

impl Negotiate for FragChunnel {
    const CAPABILITY: u64 = guid("bertha/frag");
    const IMPL: u64 = guid("bertha/frag/sw");
    const NAME: &'static str = "frag/sw";
}

bertha::negotiable!(FragChunnel);

impl<InC> Chunnel<InC> for FragChunnel
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Connection = ProfiledConn<FragConn<InC>>;

    fn connect_wrap(&self, inner: InC) -> BoxFut<'static, Result<Self::Connection, Error>> {
        let cfg = self.cfg;
        Box::pin(async move {
            let conn = FragConn {
                inner: Arc::new(inner),
                cfg,
                next_msg_id: Mutex::new(0),
                partial: Mutex::new(HashMap::new()),
            };
            Ok(ProfiledConn::datagram(Self::NAME, conn))
        })
    }
}

struct Partial {
    frags: Vec<Option<Frame>>,
    have: usize,
    started: Instant,
}

/// Connection produced by [`FragChunnel`].
pub struct FragConn<C> {
    inner: Arc<C>,
    cfg: FragConfig,
    next_msg_id: Mutex<u64>,
    partial: Mutex<HashMap<(bertha::Addr, u64), Partial>>,
}

fn header(msg_id: u64, idx: u16, total: u16) -> [u8; HDR] {
    let mut h = [0u8; HDR];
    // check: allow(panic): constant ranges into a fixed HDR-byte array
    h[..8].copy_from_slice(&msg_id.to_le_bytes());
    // check: allow(panic): constant ranges into a fixed HDR-byte array
    h[8..10].copy_from_slice(&idx.to_le_bytes());
    // check: allow(panic): constant ranges into a fixed HDR-byte array
    h[10..12].copy_from_slice(&total.to_le_bytes());
    h
}

#[cfg(test)]
fn frame(msg_id: u64, idx: u16, total: u16, payload: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(HDR + payload.len());
    f.extend_from_slice(&header(msg_id, idx, total));
    f.extend_from_slice(payload);
    f
}

impl<C> ChunnelConnection for FragConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Data = Datagram;

    fn send(&self, (addr, payload): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            let mtu = self.cfg.mtu.max(1);
            let total = payload.len().div_ceil(mtu).max(1);
            if total > u16::MAX as usize {
                return Err(Error::Other(format!(
                    "payload of {} bytes needs {} fragments (max {})",
                    payload.len(),
                    total,
                    u16::MAX
                )));
            }
            let msg_id = {
                let mut id = self.next_msg_id.lock();
                let v = *id;
                *id += 1;
                v
            };
            if total == 1 {
                // Common case: the header lands in the frame's headroom.
                let mut f = payload;
                f.prepend(&header(msg_id, 0, 1));
                return self.inner.send((addr, f)).await;
            }
            // Fragments are O(1) slab-sharing views; the prepend falls back
            // to a per-fragment copy because the views alias one slab.
            let mut rest = payload;
            let mut idx: u16 = 0;
            while !rest.is_empty() {
                let take = rest.len().min(mtu);
                let mut chunk = rest.split_to(take);
                chunk.prepend(&header(msg_id, idx, total as u16));
                self.inner.send((addr.clone(), chunk)).await?;
                idx += 1;
            }
            Ok(())
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            loop {
                let (from, mut buf) = self.inner.recv().await?;
                let hdr = crate::take_u64_le(&buf).and_then(|(msg_id, rest)| {
                    let (idx, rest) = crate::take_u16_le(rest)?;
                    let (total, _) = crate::take_u16_le(rest)?;
                    Some((msg_id, idx as usize, total as usize))
                });
                let Some((msg_id, idx, total)) = hdr else {
                    return Err(Error::Encode("fragment too short".into()));
                };
                buf.strip(HDR);

                if total == 0 || idx >= total {
                    return Err(Error::Encode(format!("bad fragment indices {idx}/{total}")));
                }
                if total == 1 {
                    return Ok((from, buf));
                }

                let mut partials = self.partial.lock();
                // Evict stale partial messages.
                let timeout = self.cfg.reassembly_timeout;
                partials.retain(|_, p| p.started.elapsed() < timeout);

                let key = (from.clone(), msg_id);
                let p = partials.entry(key.clone()).or_insert_with(|| Partial {
                    frags: vec![None; total],
                    have: 0,
                    started: Instant::now(),
                });
                if p.frags.len() != total {
                    // Conflicting totals for one message id: drop it.
                    partials.remove(&key);
                    continue;
                }
                if let Some(slot) = p.frags.get_mut(idx) {
                    if slot.is_none() {
                        // Park the received frame itself; no copy until
                        // reassembly.
                        *slot = Some(buf);
                        p.have += 1;
                    }
                }
                if p.have == total {
                    if let Some(p) = partials.remove(&key) {
                        let total_len: usize = p
                            .frags
                            .iter()
                            .map(|f| f.as_ref().map_or(0, |v| v.len()))
                            .sum();
                        // One lease sized up front; fragments copy into it
                        // exactly once.
                        let mut whole = Frame::recv_lease(total_len);
                        let Some(window) = whole.payload_mut() else {
                            continue;
                        };
                        let mut off = 0;
                        for f in p.frags.into_iter().flatten() {
                            // check: allow(panic): off + fragment lengths sum to the lease size
                            window[off..off + f.len()].copy_from_slice(&f);
                            off += f.len();
                        }
                        whole.truncate(off);
                        return Ok((from, whole));
                    }
                }
            }
        })
    }
}

/// Stateless on the send path: draining is entirely the inner layer's
/// concern.
impl<C> Drain for FragConn<C>
where
    C: Drain,
{
    fn drain(&self) -> BoxFut<'_, Result<(), Error>> {
        self.inner.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha::conn::pair;
    use bertha::Addr;
    use proptest::prelude::*;

    fn addr() -> Addr {
        Addr::Mem("peer".into())
    }

    #[tokio::test]
    async fn small_payload_single_fragment() {
        let (a, b) = pair::<Datagram>(64);
        let fa = FragChunnel::default().connect_wrap(a).await.unwrap();
        let fb = FragChunnel::default().connect_wrap(b).await.unwrap();
        fa.send((addr(), b"tiny".into())).await.unwrap();
        let (_, d) = fb.recv().await.unwrap();
        assert_eq!(d, b"tiny");
    }

    #[tokio::test]
    async fn large_payload_reassembles() {
        let (a, b) = pair::<Datagram>(1024);
        let cfg = FragConfig {
            mtu: 100,
            ..Default::default()
        };
        let fa = FragChunnel::new(cfg).connect_wrap(a).await.unwrap();
        let fb = FragChunnel::new(cfg).connect_wrap(b).await.unwrap();
        let payload: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        fa.send((addr(), payload.clone().into())).await.unwrap();
        let (_, d) = fb.recv().await.unwrap();
        assert_eq!(d, payload);
    }

    #[tokio::test]
    async fn interleaved_messages_reassemble_independently() {
        let (a, b) = pair::<Datagram>(1024);
        let cfg = FragConfig {
            mtu: 10,
            ..Default::default()
        };
        let fb = FragChunnel::new(cfg).connect_wrap(b).await.unwrap();
        // Hand-craft interleaved fragments of two messages.
        let m0: Vec<u8> = vec![0xaa; 25];
        let m1: Vec<u8> = vec![0xbb; 15];
        let f = |id: u64, idx: u16, total: u16, chunk: &[u8]| frame(id, idx, total, chunk);
        a.send((addr(), f(0, 0, 3, &m0[..10]).into())).await.unwrap();
        a.send((addr(), f(1, 0, 2, &m1[..10]).into())).await.unwrap();
        a.send((addr(), f(0, 1, 3, &m0[10..20]).into())).await.unwrap();
        a.send((addr(), f(1, 1, 2, &m1[10..]).into())).await.unwrap();
        a.send((addr(), f(0, 2, 3, &m0[20..]).into())).await.unwrap();

        let (_, d1) = fb.recv().await.unwrap();
        assert_eq!(d1, m1, "second message completes first");
        let (_, d0) = fb.recv().await.unwrap();
        assert_eq!(d0, m0);
    }

    #[tokio::test]
    async fn bad_indices_rejected() {
        let (a, b) = pair::<Datagram>(8);
        let fb = FragChunnel::default().connect_wrap(b).await.unwrap();
        a.send((addr(), frame(0, 5, 2, b"x").into())).await.unwrap();
        assert!(fb.recv().await.is_err());
    }

    #[tokio::test]
    async fn empty_payload_round_trips() {
        let (a, b) = pair::<Datagram>(8);
        let fa = FragChunnel::default().connect_wrap(a).await.unwrap();
        let fb = FragChunnel::default().connect_wrap(b).await.unwrap();
        fa.send((addr(), vec![].into())).await.unwrap();
        let (_, d) = fb.recv().await.unwrap();
        assert!(d.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn round_trips_any_payload(payload in proptest::collection::vec(any::<u8>(), 0..5000), mtu in 1usize..600) {
            let rt = tokio::runtime::Builder::new_current_thread().enable_all().build().unwrap();
            rt.block_on(async move {
                let (a, b) = pair::<Datagram>(8192);
                let cfg = FragConfig { mtu, ..Default::default() };
                let fa = FragChunnel::new(cfg).connect_wrap(a).await.unwrap();
                let fb = FragChunnel::new(cfg).connect_wrap(b).await.unwrap();
                fa.send((addr(), payload.clone().into())).await.unwrap();
                let (_, d) = fb.recv().await.unwrap();
                assert_eq!(d, payload);
            });
        }
    }
}

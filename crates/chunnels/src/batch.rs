//! Batching chunnel: coalesce small messages into fewer datagrams.
//!
//! Messages to the same destination within a linger window (or until the
//! batch size cap) are packed into one datagram; the receive side unpacks
//! them one per `recv`. Batching trades a bounded latency increase for
//! fewer per-datagram costs — the classic knob NIC offloads (segmentation
//! offload, interrupt coalescing) turn in hardware, which is why it is a
//! capability worth negotiating.
//!
//! Wire format: repeated `[len: u32 LE][payload]`.

use bertha::buf::Frame;
use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain, ProfiledConn};
use bertha::negotiate::{guid, Negotiate};
use bertha::{Addr, Chunnel, Error};
use bertha_telemetry as tele;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Batching parameters.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Maximum messages per batch.
    pub max_msgs: usize,
    /// Maximum batch payload bytes before an early flush.
    pub max_bytes: usize,
    /// How long a non-full batch may wait for company.
    pub linger: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_msgs: 16,
            max_bytes: 32 * 1024,
            linger: Duration::from_micros(500),
        }
    }
}

/// The batching chunnel. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct BatchChunnel {
    cfg: BatchConfig,
}

impl BatchChunnel {
    /// Batching with explicit parameters.
    pub fn new(cfg: BatchConfig) -> Self {
        BatchChunnel { cfg }
    }
}

impl Negotiate for BatchChunnel {
    const CAPABILITY: u64 = guid("bertha/batch");
    const IMPL: u64 = guid("bertha/batch/linger");
    const NAME: &'static str = "batch/linger";
}

bertha::negotiable!(BatchChunnel);

impl<InC> Chunnel<InC> for BatchChunnel
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Connection = ProfiledConn<BatchConn<InC>>;

    fn connect_wrap(&self, inner: InC) -> BoxFut<'static, Result<Self::Connection, Error>> {
        let cfg = self.cfg;
        Box::pin(async move {
            let conn = BatchConn {
                inner: Arc::new(inner),
                cfg,
                pending: Arc::new(Mutex::new(None)),
                stats: Arc::new(BatchStats::new()),
                unpacked: Mutex::new(VecDeque::new()),
            };
            Ok(ProfiledConn::datagram(Self::NAME, conn))
        })
    }
}

/// Per-connection batching counters, also mirrored into the global
/// registry (`batch.*` metrics). Which counter a flush lands in records
/// *why* the batch went out, which is what tests should assert instead of
/// wall-clock bounds.
#[derive(Debug)]
pub struct BatchStats {
    /// Batches flushed because the message/byte cap was reached (includes
    /// degenerate single-message batches that can never linger).
    pub flush_full: tele::MirroredCounter,
    /// Batches flushed by the linger timer.
    pub flush_linger: tele::MirroredCounter,
    /// Batches flushed early because a send to a different destination
    /// displaced them.
    pub flush_displaced: tele::MirroredCounter,
    /// Batches flushed by an explicit `flush()` (including drain).
    pub flush_explicit: tele::MirroredCounter,
}

impl BatchStats {
    fn new() -> Self {
        BatchStats {
            flush_full: tele::MirroredCounter::new("batch.flush_full"),
            flush_linger: tele::MirroredCounter::new("batch.flush_linger"),
            flush_displaced: tele::MirroredCounter::new("batch.flush_displaced"),
            flush_explicit: tele::MirroredCounter::new("batch.flush_explicit"),
        }
    }
}

fn record_occupancy(msgs: usize) {
    tele::histogram("batch.occupancy_msgs").record(msgs as u64);
}

struct PendingBatch {
    addr: Addr,
    /// The packed batch, built in a pooled frame (headroom intact for the
    /// layers below).
    buf: Frame,
    count: usize,
    /// Generation counter distinguishing this batch from its successors,
    /// so a lingering flush task flushes only its own batch.
    gen: u64,
}

/// Connection produced by [`BatchChunnel`].
pub struct BatchConn<C> {
    inner: Arc<C>,
    cfg: BatchConfig,
    pending: Arc<Mutex<Option<PendingBatch>>>,
    stats: Arc<BatchStats>,
    unpacked: Mutex<VecDeque<Datagram>>,
}

fn append_msg(buf: &mut Frame, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Split a packed batch into its messages. Each message is a view into the
/// batch's slab (`split_to`), so unpacking copies nothing.
fn unpack(from: &Addr, mut buf: Frame) -> Result<Vec<Datagram>, Error> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let Some((len, _)) = crate::take_u32_le(&buf) else {
            return Err(Error::Encode("truncated batch header".into()));
        };
        let len = len as usize;
        if buf.len() < 4 + len {
            return Err(Error::Encode("truncated batch payload".into()));
        }
        buf.strip(4);
        out.push((from.clone(), buf.split_to(len)));
    }
    Ok(out)
}

impl<C> BatchConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    /// Flush any lingering batch immediately.
    pub async fn flush(&self) -> Result<(), Error> {
        let taken = self.pending.lock().take();
        if let Some(b) = taken {
            self.stats.flush_explicit.incr();
            record_occupancy(b.count);
            self.inner.send((b.addr, b.buf)).await?;
        }
        Ok(())
    }

    /// This connection's batching counters.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }
}

impl<C> ChunnelConnection for BatchConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Data = Datagram;

    fn send(&self, (addr, payload): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            enum Action {
                // Flush this full buffer now.
                FlushNow(Addr, Frame),
                // Flush a displaced batch and then this one, immediately.
                FlushTwo(Addr, Frame, Addr, Frame),
                // Flush a displaced batch, then arm a linger timer for the
                // new one.
                FlushThenLinger(Addr, Frame, u64),
                // First message of a batch: arm a linger timer for `gen`.
                Linger(u64),
                // Joined an existing batch; its timer will flush it.
                Joined,
            }

            let action = {
                let mut p = self.pending.lock();
                // Taking the pending batch up front (and putting it back on
                // the paths that keep it) avoids panicking re-`take()`s of a
                // slot we only pattern-matched as occupied.
                match p.take() {
                    // Same destination and room left: join the batch.
                    Some(mut b) if b.addr == addr => {
                        append_msg(&mut b.buf, &payload);
                        b.count += 1;
                        if b.count >= self.cfg.max_msgs || b.buf.len() >= self.cfg.max_bytes {
                            self.stats.flush_full.incr();
                            record_occupancy(b.count);
                            Action::FlushNow(b.addr, b.buf)
                        } else {
                            *p = Some(b);
                            Action::Joined
                        }
                    }
                    // Different destination: flush the old batch, start new.
                    Some(old) => {
                        self.stats.flush_displaced.incr();
                        record_occupancy(old.count);
                        let mut buf = Frame::empty();
                        append_msg(&mut buf, &payload);
                        if 1 >= self.cfg.max_msgs || buf.len() >= self.cfg.max_bytes {
                            // Degenerate config or oversized first message:
                            // nothing to wait for.
                            self.stats.flush_full.incr();
                            record_occupancy(1);
                            Action::FlushTwo(old.addr, old.buf, addr, buf)
                        } else {
                            let gen = rand_gen();
                            *p = Some(PendingBatch {
                                addr,
                                buf,
                                count: 1,
                                gen,
                            });
                            Action::FlushThenLinger(old.addr, old.buf, gen)
                        }
                    }
                    None => {
                        let mut buf = Frame::empty();
                        append_msg(&mut buf, &payload);
                        if 1 >= self.cfg.max_msgs || buf.len() >= self.cfg.max_bytes {
                            self.stats.flush_full.incr();
                            record_occupancy(1);
                            Action::FlushNow(addr, buf)
                        } else {
                            let gen = rand_gen();
                            *p = Some(PendingBatch {
                                addr,
                                buf,
                                count: 1,
                                gen,
                            });
                            Action::Linger(gen)
                        }
                    }
                }
            };

            match action {
                Action::FlushNow(a, b) => self.inner.send((a, b)).await,
                Action::FlushTwo(a1, b1, a2, b2) => {
                    self.inner.send((a1, b1)).await?;
                    self.inner.send((a2, b2)).await
                }
                Action::FlushThenLinger(a, b, gen) => {
                    self.inner.send((a, b)).await?;
                    self.spawn_linger(gen);
                    Ok(())
                }
                Action::Linger(gen) => {
                    self.spawn_linger(gen);
                    Ok(())
                }
                Action::Joined => Ok(()),
            }
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            loop {
                if let Some(d) = self.unpacked.lock().pop_front() {
                    return Ok(d);
                }
                let (from, buf) = self.inner.recv().await?;
                let msgs = unpack(&from, buf)?;
                let mut q = self.unpacked.lock();
                q.extend(msgs);
            }
        })
    }
}

impl<C> BatchConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    fn spawn_linger(&self, gen: u64) {
        let inner = Arc::clone(&self.inner);
        let pending = Arc::clone(&self.pending);
        let stats = Arc::clone(&self.stats);
        let linger = self.cfg.linger;
        tokio::spawn(async move {
            tokio::time::sleep(linger).await;
            let taken = {
                let mut p = pending.lock();
                match p.as_ref() {
                    Some(b) if b.gen == gen => p.take(),
                    _ => None,
                }
            };
            if let Some(b) = taken {
                stats.flush_linger.incr();
                record_occupancy(b.count);
                let _ = inner.send((b.addr, b.buf)).await;
            }
        });
    }
}

impl<C> Drain for BatchConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Drain + Send + Sync + 'static,
{
    /// Flushes any lingering batch, then drains the layer below.
    fn drain(&self) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            self.flush().await?;
            self.inner.drain().await
        })
    }
}

fn rand_gen() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static G: AtomicU64 = AtomicU64::new(1);
    G.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha::conn::pair;

    fn addr() -> Addr {
        Addr::Mem("peer".into())
    }

    #[tokio::test]
    async fn full_batch_flushes_as_one_datagram() {
        let (a, b) = pair::<Datagram>(64);
        let cfg = BatchConfig {
            max_msgs: 4,
            linger: Duration::from_secs(10), // only the cap can flush
            ..Default::default()
        };
        let ba = BatchChunnel::new(cfg).connect_wrap(a).await.unwrap();
        for i in 0..4u8 {
            ba.send((addr(), vec![i].into())).await.unwrap();
        }
        // One underlying datagram carrying four messages.
        let (_, raw) = b.recv().await.unwrap();
        let msgs = unpack(&addr(), raw).unwrap();
        assert_eq!(msgs.len(), 4);
        assert_eq!(msgs[2].1, vec![2]);
    }

    #[tokio::test]
    async fn linger_flushes_partial_batch() {
        let (a, b) = pair::<Datagram>(64);
        let cfg = BatchConfig {
            max_msgs: 100,
            linger: Duration::from_millis(5),
            ..Default::default()
        };
        let ba = BatchChunnel::new(cfg).connect_wrap(a).await.unwrap();
        let bb = BatchChunnel::new(cfg).connect_wrap(b).await.unwrap();
        ba.send((addr(), b"only one".into())).await.unwrap();
        let (_, d) = bb.recv().await.unwrap();
        assert_eq!(d, b"only one");
        assert_eq!(ba.stats().flush_linger.get(), 1);
        assert_eq!(ba.stats().flush_full.get(), 0);
    }

    #[tokio::test]
    async fn recv_unpacks_one_per_call() {
        let (a, b) = pair::<Datagram>(64);
        let cfg = BatchConfig {
            max_msgs: 3,
            linger: Duration::from_secs(10),
            ..Default::default()
        };
        let ba = BatchChunnel::new(cfg).connect_wrap(a).await.unwrap();
        let bb = BatchChunnel::new(cfg).connect_wrap(b).await.unwrap();
        for i in 0..3u8 {
            ba.send((addr(), vec![i; 2].into())).await.unwrap();
        }
        for i in 0..3u8 {
            let (_, d) = bb.recv().await.unwrap();
            assert_eq!(d, vec![i; 2]);
        }
    }

    #[tokio::test]
    async fn destination_change_flushes_old_batch() {
        let (a, b) = pair::<Datagram>(64);
        let cfg = BatchConfig {
            max_msgs: 100,
            linger: Duration::from_secs(10),
            ..Default::default()
        };
        let ba = BatchChunnel::new(cfg).connect_wrap(a).await.unwrap();
        ba.send((Addr::Mem("x".into()), vec![1].into())).await.unwrap();
        ba.send((Addr::Mem("y".into()), vec![2].into())).await.unwrap();
        // The x-batch must have been flushed by the y send.
        let (_, raw) = b.recv().await.unwrap();
        let msgs = unpack(&Addr::Mem("x".into()), raw).unwrap();
        assert_eq!(msgs[0].1, vec![1]);
    }

    #[tokio::test]
    async fn batch_of_one_flushes_immediately() {
        let (a, b) = pair::<Datagram>(8);
        let cfg = BatchConfig {
            max_msgs: 1,
            linger: Duration::from_secs(100), // must never be waited on
            ..Default::default()
        };
        let ba = BatchChunnel::new(cfg).connect_wrap(a).await.unwrap();
        ba.send((addr(), vec![7].into())).await.unwrap();
        let (_, raw) = b.recv().await.unwrap();
        // The flush-kind counters say *why* the batch went out, which is
        // robust on loaded CI machines where wall-clock bounds are not:
        // a cap-full flush, never a lingered one.
        assert_eq!(ba.stats().flush_full.get(), 1);
        assert_eq!(ba.stats().flush_linger.get(), 0);
        assert_eq!(unpack(&addr(), raw).unwrap()[0].1, vec![7]);
    }

    #[tokio::test]
    async fn oversized_first_message_flushes_immediately() {
        let (a, b) = pair::<Datagram>(8);
        let cfg = BatchConfig {
            max_msgs: 100,
            max_bytes: 16,
            linger: Duration::from_secs(100),
        };
        let ba = BatchChunnel::new(cfg).connect_wrap(a).await.unwrap();
        ba.send((addr(), vec![0u8; 64].into())).await.unwrap();
        let (_, raw) = b.recv().await.unwrap();
        // Counter-based: an over-`max_bytes` first message must flush as
        // cap-full, never via the (100 s) linger timer.
        assert_eq!(ba.stats().flush_full.get(), 1);
        assert_eq!(ba.stats().flush_linger.get(), 0);
        assert_eq!(unpack(&addr(), raw).unwrap()[0].1.len(), 64);
    }

    #[tokio::test]
    async fn truncated_batch_is_an_error() {
        let (a, b) = pair::<Datagram>(8);
        let bb = BatchChunnel::default().connect_wrap(b).await.unwrap();
        a.send((addr(), vec![9, 0, 0, 0, 1].into())).await.unwrap(); // claims 9 bytes, has 1
        assert!(matches!(bb.recv().await, Err(Error::Encode(_))));
    }

    #[tokio::test]
    async fn explicit_flush() {
        let (a, b) = pair::<Datagram>(8);
        let cfg = BatchConfig {
            max_msgs: 100,
            linger: Duration::from_secs(100),
            ..Default::default()
        };
        let ba = BatchChunnel::new(cfg).connect_wrap(a).await.unwrap();
        ba.send((addr(), vec![5].into())).await.unwrap();
        ba.flush().await.unwrap();
        let (_, raw) = b.recv().await.unwrap();
        assert_eq!(unpack(&addr(), raw).unwrap()[0].1, vec![5]);
        assert_eq!(ba.stats().flush_explicit.get(), 1);
    }
}

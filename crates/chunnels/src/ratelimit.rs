//! Rate-limiting chunnel: a token bucket on the send path.
//!
//! Traffic policing/shaping is a standard NIC and switch offload (meters,
//! rate limiters in SR-IOV NICs — the PicNIC line of work the paper cites
//! for sharing concerns); this is its software fallback. Sends block until
//! a token is available, smoothing bursts to the configured rate.

use bertha::conn::{BoxFut, ChunnelConnection, Datagram, Drain, ProfiledConn};
use bertha::negotiate::{guid, Negotiate};
use bertha::{Chunnel, Error};
use bertha_telemetry as tele;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token-bucket parameters.
#[derive(Clone, Copy, Debug)]
pub struct RateLimitConfig {
    /// Sustained rate, in messages per second.
    pub msgs_per_sec: f64,
    /// Bucket depth: how many messages may burst at line rate.
    pub burst: f64,
}

impl Default for RateLimitConfig {
    fn default() -> Self {
        RateLimitConfig {
            msgs_per_sec: 10_000.0,
            burst: 32.0,
        }
    }
}

/// The rate-limiting chunnel. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct RateLimitChunnel {
    cfg: RateLimitConfig,
}

impl RateLimitChunnel {
    /// Limit to `msgs_per_sec` with the given burst depth.
    pub fn new(msgs_per_sec: f64, burst: f64) -> Self {
        RateLimitChunnel {
            cfg: RateLimitConfig {
                msgs_per_sec,
                burst,
            },
        }
    }
}

impl Negotiate for RateLimitChunnel {
    const CAPABILITY: u64 = guid("bertha/ratelimit");
    const IMPL: u64 = guid("bertha/ratelimit/token-bucket");
    const NAME: &'static str = "ratelimit/token-bucket";
}

bertha::negotiable!(RateLimitChunnel);

struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// Per-connection rate-limiter counters, also mirrored into the global
/// registry (`ratelimit.*` metrics).
#[derive(Debug)]
pub struct RateLimitStats {
    /// Sends that found the bucket empty and had to wait. Counted once per
    /// send, however many refill waits it took.
    pub throttle_events: tele::MirroredCounter,
    /// Sends admitted (throttled or not).
    pub sent: tele::MirroredCounter,
}

impl RateLimitStats {
    fn new() -> Self {
        RateLimitStats {
            throttle_events: tele::MirroredCounter::new("ratelimit.throttle_events"),
            sent: tele::MirroredCounter::new("ratelimit.sent"),
        }
    }
}

/// Connection produced by [`RateLimitChunnel`].
pub struct RateLimitConn<C> {
    inner: Arc<C>,
    cfg: RateLimitConfig,
    bucket: Mutex<Bucket>,
    stats: RateLimitStats,
}

impl<InC> Chunnel<InC> for RateLimitChunnel
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Connection = ProfiledConn<RateLimitConn<InC>>;

    fn connect_wrap(&self, inner: InC) -> BoxFut<'static, Result<Self::Connection, Error>> {
        let cfg = self.cfg;
        Box::pin(async move {
            let rate_ok = cfg.msgs_per_sec.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
            let burst_ok = cfg.burst.partial_cmp(&1.0) != Some(std::cmp::Ordering::Less)
                && !cfg.burst.is_nan();
            if !rate_ok || !burst_ok {
                return Err(Error::Other(format!(
                    "invalid rate limit: {} msgs/s, burst {}",
                    cfg.msgs_per_sec, cfg.burst
                )));
            }
            let conn = RateLimitConn {
                inner: Arc::new(inner),
                cfg,
                bucket: Mutex::new(Bucket {
                    tokens: cfg.burst,
                    last_refill: Instant::now(),
                }),
                stats: RateLimitStats::new(),
            };
            Ok(ProfiledConn::datagram(Self::NAME, conn))
        })
    }
}

impl<C> RateLimitConn<C> {
    /// This connection's rate-limiter counters.
    pub fn stats(&self) -> &RateLimitStats {
        &self.stats
    }

    /// Take a token, or say how long until one is available.
    fn try_take(&self) -> Result<(), Duration> {
        let mut b = self.bucket.lock();
        let now = Instant::now();
        let elapsed = now.duration_since(b.last_refill).as_secs_f64();
        b.tokens = (b.tokens + elapsed * self.cfg.msgs_per_sec).min(self.cfg.burst);
        b.last_refill = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - b.tokens;
            Err(Duration::from_secs_f64(deficit / self.cfg.msgs_per_sec))
        }
    }
}

impl<C> ChunnelConnection for RateLimitConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Data = Datagram;

    fn send(&self, data: Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            let mut throttled = false;
            loop {
                match self.try_take() {
                    Ok(()) => break,
                    Err(wait) => {
                        if !throttled {
                            throttled = true;
                            self.stats.throttle_events.incr();
                        }
                        tokio::time::sleep(wait).await;
                    }
                }
            }
            self.stats.sent.incr();
            self.inner.send(data).await
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        self.inner.recv()
    }
}

/// Stateless on the send path: draining is entirely the inner layer's
/// concern.
impl<C> Drain for RateLimitConn<C>
where
    C: Drain,
{
    fn drain(&self) -> BoxFut<'_, Result<(), Error>> {
        self.inner.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha::conn::pair;
    use bertha::Addr;

    #[tokio::test]
    async fn burst_passes_immediately() {
        let (a, b) = pair::<Datagram>(64);
        let conn = RateLimitChunnel::new(10.0, 8.0)
            .connect_wrap(a)
            .await
            .unwrap();
        for i in 0..8u8 {
            conn.send((Addr::Mem("x".into()), vec![i].into())).await.unwrap();
        }
        // Counter-based, not wall-clock: the bucket starts with 8 tokens
        // and refills only add, so none of the 8 sends may ever block.
        assert_eq!(conn.stats().throttle_events.get(), 0, "burst was throttled");
        assert_eq!(conn.stats().sent.get(), 8);
        for i in 0..8u8 {
            let (_, d) = b.recv().await.unwrap();
            assert_eq!(d, vec![i]);
        }
    }

    #[tokio::test]
    async fn sustained_rate_is_enforced() {
        let (a, _b) = pair::<Datagram>(1024);
        // 100 msgs/s, burst 1: 20 messages should take ~190ms.
        let conn = RateLimitChunnel::new(100.0, 1.0)
            .connect_wrap(a)
            .await
            .unwrap();
        let t = Instant::now();
        for i in 0..20u8 {
            conn.send((Addr::Mem("x".into()), vec![i].into())).await.unwrap();
        }
        let elapsed = t.elapsed();
        // The lower bound is pure token math (19 refills at 100/s) and
        // cannot be violated by slow machines; the old upper bound could,
        // so it is replaced by the throttle counter: the bucket must have
        // actually run dry, not merely taken a while.
        assert!(
            elapsed >= Duration::from_millis(150),
            "rate not enforced: {elapsed:?}"
        );
        assert!(
            conn.stats().throttle_events.get() >= 1,
            "bucket never ran dry"
        );
    }

    #[tokio::test]
    async fn recv_is_not_limited() {
        let (a, b) = pair::<Datagram>(64);
        let conn = RateLimitChunnel::new(1.0, 1.0)
            .connect_wrap(a)
            .await
            .unwrap();
        for i in 0..10u8 {
            b.send((Addr::Mem("x".into()), vec![i].into())).await.unwrap();
        }
        for _ in 0..10 {
            conn.recv().await.unwrap();
        }
        // recv never touches the bucket, so the throttle counter staying
        // at zero is exact (the old sub-second wall-clock bound was not).
        assert_eq!(conn.stats().throttle_events.get(), 0);
    }

    #[tokio::test]
    async fn invalid_config_rejected() {
        let (a, _b) = pair::<Datagram>(1);
        assert!(RateLimitChunnel::new(0.0, 4.0)
            .connect_wrap(a)
            .await
            .is_err());
        let (a, _b) = pair::<Datagram>(1);
        assert!(RateLimitChunnel::new(10.0, 0.0)
            .connect_wrap(a)
            .await
            .is_err());
    }
}

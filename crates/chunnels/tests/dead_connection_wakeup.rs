//! Dead-connection wakeup: a connection whose peer or path has died must
//! *fail* blocked operations promptly — never strand a `recv().await`
//! forever — and a re-negotiable connection must come back to life once a
//! working path is picked.

use bertha::conn::{pair, ChunnelConnection, Datagram};
use bertha::negotiate::{negotiate_server_switchable, negotiate_switchable_client, NegotiateOpts};
use bertha::{wrap, Addr, Chunnel, Error};
use bertha_chunnels::heartbeat::HeartbeatChunnel;
use bertha_chunnels::reliable::{ReliabilityChunnel, ReliabilityConfig};
use bertha_transport::fault::{FaultChunnel, FaultConfig};
use std::sync::Arc;
use std::time::Duration;

/// The retransmit budget exhausting must wake a receiver that was already
/// blocked when the path went dark.
#[tokio::test]
async fn budget_exhaustion_wakes_blocked_recv() {
    let (a, b) = pair::<Datagram>(64);
    let (faults, handle) = FaultChunnel::controlled(FaultConfig::default());
    let a = faults.connect_wrap(a).await.unwrap();
    let b = faults.connect_wrap(b).await.unwrap();

    let rel = ReliabilityChunnel::new(ReliabilityConfig {
        rto: Duration::from_millis(10),
        max_retries: 3,
        rto_max: Duration::from_millis(40),
        window: 8,
    });
    let ca = Arc::new(rel.connect_wrap(a).await.unwrap());
    let cb = rel.connect_wrap(b).await.unwrap();
    let addr = Addr::Mem("wakeup".into());

    // Healthy first: one round trip.
    ca.send((addr.clone(), b"ping".to_vec())).await.unwrap();
    let (_, got) = cb.recv().await.unwrap();
    assert_eq!(got, b"ping");

    // Park a receiver, then cut the path and send: the retransmit budget
    // exhausts and must error the *blocked* recv, not just future calls.
    let parked = Arc::clone(&ca);
    let blocked = tokio::spawn(async move { parked.recv().await });
    tokio::time::sleep(Duration::from_millis(20)).await; // let it block
    handle.set_blackhole(true);
    ca.send((addr, b"lost".to_vec())).await.unwrap();

    let res = tokio::time::timeout(Duration::from_secs(2), blocked)
        .await
        .expect("blocked recv must wake when the connection dies")
        .unwrap();
    assert!(res.is_err(), "the wakeup is an error, not data");
}

/// A silent peer must fail `recv` after `dead_after`, not block forever.
#[tokio::test]
async fn silent_peer_times_out_heartbeat_recv() {
    let (a, b) = pair::<Datagram>(64);
    let addr = Addr::Mem("hb".into());
    let hb = HeartbeatChunnel::new(
        addr.clone(),
        Duration::from_millis(20),
        Duration::from_millis(120),
    );
    let ca = hb.connect_wrap(a).await.unwrap();

    // The peer (raw end) sees data and heartbeat frames but never answers.
    ca.send((addr, b"hello".to_vec())).await.unwrap();
    let (_, frame) = b.recv().await.unwrap();
    assert_eq!(frame, [&[0x10u8][..], b"hello"].concat());

    let err = tokio::time::timeout(Duration::from_secs(2), ca.recv())
        .await
        .expect("recv must give up on a silent peer")
        .expect_err("a dead peer is an error");
    assert!(
        err.is_peer_dead(),
        "expected a typed peer-death error, got {err}"
    );
}

/// The full robustness loop: liveness detection fails the endpoint fast,
/// and once a working path exists again, one `renegotiate()` call revives
/// the *same* connection object on a fresh stack.
#[tokio::test]
async fn renegotiation_revives_a_dead_endpoint() {
    let (a, b) = pair::<Datagram>(256);
    let (faults, handle) = FaultChunnel::controlled(FaultConfig::default());
    let fa = faults.connect_wrap(a).await.unwrap();
    let fb = faults.connect_wrap(b).await.unwrap();
    let addr = Addr::Mem("revive".into());

    let stack = wrap!(HeartbeatChunnel::new(
        addr.clone(),
        Duration::from_millis(20),
        Duration::from_millis(150),
    ));
    let srv_stack = stack.clone();
    let srv_task = tokio::spawn(async move {
        negotiate_server_switchable(srv_stack, fb, NegotiateOpts::named("srv")).await
    });
    let (cli, _picks) =
        negotiate_switchable_client(stack, fa, addr.clone(), NegotiateOpts::named("cli"))
            .await
            .unwrap();
    let srv = srv_task.await.unwrap().unwrap();

    // Epoch-0 traffic, both directions.
    cli.send((addr.clone(), b"up?".to_vec())).await.unwrap();
    let (from, got) = srv.recv().await.unwrap();
    assert_eq!(got, b"up?");
    srv.send((from, b"up".to_vec())).await.unwrap();
    assert_eq!(cli.recv().await.unwrap().1, b"up");

    // The path dies. A blocked recv errors out within the liveness bound
    // instead of hanging.
    handle.set_blackhole(true);
    let err = tokio::time::timeout(Duration::from_secs(2), cli.recv())
        .await
        .expect("recv on a dead path must fail fast")
        .expect_err("a dead path is an error");
    assert!(err.is_peer_dead(), "got {err}");

    // The path heals; one renegotiation round revives the endpoint — same
    // connection objects, fresh stack, traffic flows again.
    handle.set_blackhole(false);
    cli.renegotiate()
        .await
        .expect("renegotiation over the healed path");
    assert_eq!(cli.epoch(), 1);

    cli.send((addr.clone(), b"back?".to_vec())).await.unwrap();
    let (from, got) = tokio::time::timeout(Duration::from_secs(2), srv.recv())
        .await
        .expect("revived server recv")
        .unwrap();
    assert_eq!(got, b"back?");
    srv.send((from, b"back".to_vec())).await.unwrap();
    let (_, got) = tokio::time::timeout(Duration::from_secs(2), cli.recv())
        .await
        .expect("revived client recv")
        .unwrap();
    assert_eq!(got, b"back");
    assert_eq!(srv.epoch(), 1);
}

//! Property tests for the `SpanRecord` codec and the deterministic
//! samplers. Span records cross process boundaries (exporter → agent)
//! and an on-disk ring, so the decoder sees whatever arrives and must
//! never panic, and the head/tail sampling hashes must reach the same
//! verdict on every host.

use bertha_telemetry::span::{SpanRecord, SpanStatus, SPAN_MAGIC, SPAN_VERSION};
use bertha_telemetry::tracectx;
use proptest::prelude::*;

fn status_strategy() -> impl Strategy<Value = SpanStatus> {
    prop_oneof![
        Just(SpanStatus::Ok),
        Just(SpanStatus::ClientTimeout),
        Just(SpanStatus::RoundFailed),
        Just(SpanStatus::Swap),
        Just(SpanStatus::Failed),
    ]
}

fn record_strategy() -> impl Strategy<Value = SpanRecord> {
    (
        any::<u128>(),
        any::<u64>(),
        any::<u64>(),
        "[a-z]{1,12}\\.[a-z_]{1,12}",
        "[a-zA-Z0-9._-]{0,24}",
        any::<u64>(),
        any::<u64>(),
        status_strategy(),
        proptest::collection::vec(("[a-z_]{1,8}", "[ -~]{0,16}"), 0..4),
    )
        .prop_map(
            |(trace_id, span_id, parent_span_id, op, host, start_us, end_us, status, attrs)| {
                SpanRecord {
                    trace_id,
                    span_id,
                    parent_span_id,
                    op,
                    host,
                    start_us,
                    end_us,
                    status,
                    attrs,
                }
            },
        )
}

proptest! {
    #[test]
    fn encode_decode_round_trips(rec in record_strategy()) {
        let enc = rec.encode();
        prop_assert_eq!(enc[0], SPAN_MAGIC);
        prop_assert_eq!(enc[1], SPAN_VERSION);
        prop_assert_eq!(SpanRecord::decode(&enc), Some(rec));
    }

    #[test]
    fn truncated_buffers_reject(rec in record_strategy(), frac in 0.0f64..1.0) {
        let enc = rec.encode();
        let cut = (enc.len() as f64 * frac) as usize;
        prop_assert!(cut < enc.len());
        prop_assert_eq!(SpanRecord::decode(&enc[..cut]), None);
    }

    #[test]
    fn extra_trailing_bytes_are_ignored(rec in record_strategy(), tail in proptest::collection::vec(any::<u8>(), 0..32)) {
        let mut buf = rec.encode();
        buf.extend_from_slice(&tail);
        prop_assert_eq!(SpanRecord::decode(&buf), Some(rec));
    }

    #[test]
    fn arbitrary_bytes_never_panic(buf in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Garbage either rejects or decodes; the only contract here is
        // no panic, and anything that *does* decode re-encodes (the
        // collector persists what it accepted).
        if let Some(rec) = SpanRecord::decode(&buf) {
            prop_assert!(SpanRecord::decode(&rec.encode()).is_some());
        }
    }

    #[test]
    fn bad_magic_or_version_rejects(rec in record_strategy(), byte in any::<u8>()) {
        let mut enc = rec.encode();
        if byte != SPAN_MAGIC {
            enc[0] = byte;
            prop_assert_eq!(SpanRecord::decode(&enc), None);
        }
        let mut enc2 = rec.encode();
        if byte != SPAN_VERSION {
            enc2[1] = byte;
            prop_assert_eq!(SpanRecord::decode(&enc2), None);
        }
    }

    // The head sampler is a pure function of the trace id: two hosts
    // that share a trace id (the client minted it, the server adopted
    // it off the wire) must reach the same sampling verdict with no
    // coordination — that is the whole reason the hash is FNV over the
    // id bytes rather than a per-process coin flip.
    #[test]
    fn head_sampler_agrees_across_hosts(trace_id in any::<u128>()) {
        let client_verdict = tracectx::sample_decision(trace_id);
        // "The other host": same id arriving over the wire, decided in
        // a fresh call with no shared state beyond the configuration.
        let server_verdict = tracectx::sample_decision(trace_id);
        prop_assert_eq!(client_verdict, server_verdict);
        // And the exported hash both samplers build on is stable.
        prop_assert_eq!(
            tracectx::hash64(&trace_id.to_le_bytes()),
            tracectx::hash64(&trace_id.to_le_bytes())
        );
    }
}

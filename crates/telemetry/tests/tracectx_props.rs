//! Property tests for the `TraceContext` wire codec: the 25-byte
//! context rides on every traced data frame, so the decoder sees
//! whatever the network delivers and must never panic or misreport.

use bertha_telemetry::tracectx::{TraceContext, WIRE_LEN};
use proptest::prelude::*;

fn ctx_strategy() -> impl Strategy<Value = TraceContext> {
    (any::<u128>(), any::<u64>(), any::<bool>()).prop_map(|(trace_id, span_id, sampled)| {
        TraceContext {
            trace_id,
            span_id,
            sampled,
        }
    })
}

proptest! {
    #[test]
    fn encode_decode_round_trips(ctx in ctx_strategy()) {
        let enc = ctx.encode();
        prop_assert_eq!(enc.len(), WIRE_LEN);
        prop_assert_eq!(TraceContext::decode(&enc), Some(ctx));
    }

    #[test]
    fn truncated_buffers_reject(ctx in ctx_strategy(), cut in 0usize..WIRE_LEN) {
        let enc = ctx.encode();
        prop_assert_eq!(TraceContext::decode(&enc[..cut]), None);
    }

    #[test]
    fn flag_byte_only_bit0_matters(ctx in ctx_strategy(), flags in any::<u8>()) {
        let mut enc = ctx.encode();
        enc[WIRE_LEN - 1] = flags;
        let got = TraceContext::decode(&enc).expect("length unchanged, must decode");
        prop_assert_eq!(got.trace_id, ctx.trace_id);
        prop_assert_eq!(got.span_id, ctx.span_id);
        prop_assert_eq!(got.sampled, flags & 1 == 1);
    }

    #[test]
    fn arbitrary_bytes_never_panic(buf in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Short buffers must reject; long enough buffers decode to
        // whatever the bytes say. Either way: no panic.
        let got = TraceContext::decode(&buf);
        prop_assert_eq!(got.is_some(), buf.len() >= WIRE_LEN);
    }

    #[test]
    fn extra_trailing_bytes_are_ignored(ctx in ctx_strategy(), tail in proptest::collection::vec(any::<u8>(), 0..32)) {
        let mut buf = ctx.encode().to_vec();
        buf.extend_from_slice(&tail);
        prop_assert_eq!(TraceContext::decode(&buf), Some(ctx));
    }
}

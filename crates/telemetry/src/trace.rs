//! Structured events, duration spans, and pluggable sinks.
//!
//! The fast path is the *unsinked* path: [`enabled_at`] is one relaxed
//! atomic load plus a compare, and the [`event!`] macro checks it before
//! evaluating any field expression, so uninstrumented runs pay one
//! predictable branch per event site and nothing else. Per-frame
//! data-path events are `Debug` and pass the gate only once a sink is
//! installed with [`set_sink`]; `Info`-and-above events always pass, and
//! feed the process [`flight`](crate::flight) recorder so a postmortem
//! has the recent control-path history even when nothing was listening.
//! Emission takes a `parking_lot` read lock on the sink slot
//! (uncontended except during sink swaps) and calls [`Sink::emit`].

use crate::{flight, json};
use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Verbose diagnostic detail.
    Debug,
    /// Normal operational events (negotiation outcomes, swaps).
    Info,
    /// Degraded but functioning (lease expiry, fallback activation).
    Warn,
    /// Failures (handshake exhaustion, dead peers).
    Error,
}

impl Level {
    /// Lowercase name, as emitted in JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    #[inline]
    const fn severity(self) -> u8 {
        match self {
            Level::Debug => 0,
            Level::Info => 1,
            Level::Warn => 2,
            Level::Error => 3,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.as_str())
    }
}

/// A field value. Constructed via `From` impls so call sites can pass
/// native types: `"epoch" = epoch` rather than wrapping manually.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl Value {
    fn render_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => json::push_f64(out, *v),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => json::push_str(out, s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v.into())
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v.into())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One structured event, borrowed for the duration of [`Sink::emit`].
#[derive(Debug)]
pub struct Event<'a> {
    /// Severity.
    pub level: Level,
    /// Subsystem (`negotiate`, `reneg`, `discovery`, `shard`, `chunnel`,
    /// `agent`).
    pub target: &'a str,
    /// Event name within the target.
    pub name: &'a str,
    /// Key/value fields.
    pub fields: &'a [(&'a str, Value)],
}

impl Event<'_> {
    /// Render as a single JSON-lines record (no trailing newline):
    /// `{"ts_us":...,"level":"...","target":"...","name":"...","fields":{...}}`.
    pub fn to_json_line(&self) -> String {
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or(Duration::ZERO)
            .as_micros();
        let mut out = String::with_capacity(96);
        out.push_str("{\"ts_us\":");
        out.push_str(&ts.to_string());
        out.push_str(",\"level\":\"");
        out.push_str(self.level.as_str());
        out.push_str("\",\"target\":");
        json::push_str(&mut out, self.target);
        out.push_str(",\"name\":");
        json::push_str(&mut out, self.name);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, k);
            v.render_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// Where emitted events go. Implementations must tolerate concurrent
/// `emit` calls.
pub trait Sink: Send + Sync {
    /// Deliver one event.
    fn emit(&self, ev: &Event<'_>);

    /// Flush any buffering (no-op by default).
    fn flush(&self) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// Minimum severity that passes the emission gate. With no sink the gate
/// sits at `Info` — control-path events still flow (into the flight
/// recorder); per-frame `Debug` events are dropped at one relaxed load
/// plus a compare. Installing a sink lowers the gate to `Debug`.
static GATE: AtomicU8 = AtomicU8::new(Level::Info.severity());

/// Emitted-event counts by severity, indexed `debug..error`. Always
/// counted for events that pass the gate, so an operator can spot error
/// bursts from a metrics dump without a sink attached.
static LEVEL_COUNTS: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

static PROC_START: OnceLock<Instant> = OnceLock::new();

/// True if a sink is installed: one relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// True if an event at `level` would be emitted: the hot-path gate, one
/// relaxed load plus a compare. `Info` and above always pass (they feed
/// the flight recorder); `Debug` passes only with a sink installed.
#[inline]
pub fn enabled_at(level: Level) -> bool {
    level.severity() >= GATE.load(Ordering::Relaxed)
}

/// Emitted-event counts by severity, as `(level name, count)` pairs in
/// `debug, info, warn, error` order.
pub fn events_by_level() -> [(&'static str, u64); 4] {
    [
        ("debug", LEVEL_COUNTS[0].load(Ordering::Relaxed)),
        ("info", LEVEL_COUNTS[1].load(Ordering::Relaxed)),
        ("warn", LEVEL_COUNTS[2].load(Ordering::Relaxed)),
        ("error", LEVEL_COUNTS[3].load(Ordering::Relaxed)),
    ]
}

/// Time since this process first touched telemetry. Binaries that want
/// an accurate figure call this once at startup to anchor the clock.
pub fn uptime() -> Duration {
    PROC_START.get_or_init(Instant::now).elapsed()
}

/// Install `sink` as the process-global event sink and enable emission
/// (including `Debug` events). Replaces any previous sink.
pub fn set_sink(sink: Arc<dyn Sink>) {
    *SINK.write() = Some(sink);
    GATE.store(Level::Debug.severity(), Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Remove the sink (flushing it). The gate returns to `Info`:
/// control-path events keep feeding the flight recorder.
pub fn clear_sink() {
    ENABLED.store(false, Ordering::SeqCst);
    GATE.store(Level::Info.severity(), Ordering::SeqCst);
    if let Some(s) = SINK.write().take() {
        s.flush();
    }
}

/// Install a sink according to the `BERTHA_LOG` environment variable:
/// `off` (or unset) installs nothing, `pretty` prints `Info`-and-above to
/// stderr, `json:<path>` writes JSON-lines to `<path>`. Returns whether a
/// sink was installed; errs on an unrecognized spec or unwritable path.
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var("BERTHA_LOG") {
        Err(_) => Ok(false),
        Ok(v) => install_spec(&v),
    }
}

/// [`install_from_env`]'s parser, callable directly with a spec string.
pub fn install_spec(spec: &str) -> Result<bool, String> {
    let spec = spec.trim();
    match spec {
        "" | "off" | "0" => Ok(false),
        "pretty" => {
            set_sink(Arc::new(StderrSink::new()));
            Ok(true)
        }
        s => {
            if let Some(path) = s.strip_prefix("json:") {
                let sink = JsonLinesSink::create(path)
                    .map_err(|e| format!("BERTHA_LOG: cannot create {path}: {e}"))?;
                set_sink(Arc::new(sink));
                Ok(true)
            } else {
                Err(format!(
                    "BERTHA_LOG: unrecognized value {spec:?} (expected off|pretty|json:<path>)"
                ))
            }
        }
    }
}

/// Emit one event: count it, record `Info`-and-above into the flight
/// recorder, and deliver to the installed sink, if any. Callers normally
/// use the [`event!`] macro, which skips field construction when the
/// level is gated off.
pub fn emit(level: Level, target: &str, name: &str, fields: &[(&str, Value)]) {
    if !enabled_at(level) {
        return;
    }
    LEVEL_COUNTS[level.severity() as usize].fetch_add(1, Ordering::Relaxed);
    let ev = Event {
        level,
        target,
        name,
        fields,
    };
    if level >= Level::Info {
        flight::record_line(&ev.to_json_line());
    }
    let guard = SINK.read();
    if let Some(sink) = guard.as_ref() {
        sink.emit(&ev);
    }
}

/// Emit a structured event if its level passes the gate.
///
/// ```
/// use bertha_telemetry::{event, Level};
/// event!(Level::Info, "reneg", "swap", "epoch" = 1u64, "impl" = "relay/soft");
/// ```
///
/// Field expressions are not evaluated when the level is gated off — in
/// particular, `Debug` fields cost nothing until a sink is installed.
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, $name:expr $(, $k:literal = $v:expr)* $(,)?) => {
        if $crate::enabled_at($level) {
            $crate::emit(
                $level,
                $target,
                $name,
                &[$(($k, $crate::Value::from($v))),*],
            );
        }
    };
}

/// A duration measurement that emits an event (with an `elapsed_us` field)
/// when ended. Spans sit on control paths — negotiation rounds, epoch
/// swaps — never on per-frame paths, so they unconditionally read the
/// clock; only the emission is gated.
#[derive(Debug)]
pub struct Span {
    target: &'static str,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
    trace: Option<(crate::tracectx::TraceContext, u64)>,
}

impl Span {
    /// Start a span now.
    pub fn begin(target: &'static str, name: &'static str) -> Self {
        Span {
            target,
            name,
            start: Instant::now(),
            fields: Vec::new(),
            trace: None,
        }
    }

    /// Attach a trace context (builder style): when the span ends, a
    /// `SpanRecord` named `<target>.<name>` is pushed into the process
    /// span buffer — if the trace is sampled — parented under
    /// `parent_span_id` (0 for a root span).
    pub fn with_trace(mut self, ctx: crate::tracectx::TraceContext, parent_span_id: u64) -> Self {
        self.trace = Some((ctx, parent_span_id));
        self
    }

    /// Attach a field (builder style).
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.add(key, value);
        self
    }

    /// Attach a field.
    pub fn add(&mut self, key: &'static str, value: impl Into<Value>) {
        self.fields.push((key, value.into()));
    }

    /// Time since the span began.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// End the span, emitting an `Info` event with `elapsed_us` appended.
    pub fn end(self) {
        self.end_level(Level::Info);
    }

    /// End the span at an explicit level.
    pub fn end_level(mut self, level: Level) {
        if let Some((ctx, parent)) = self.trace {
            let op = format!("{}.{}", self.target, self.name);
            let attrs: Vec<(&str, String)> = self
                .fields
                .iter()
                .map(|(k, v)| (*k, v.to_string()))
                .collect();
            crate::span::record_local(
                &op,
                &ctx,
                parent,
                self.start,
                crate::span::SpanStatus::Ok,
                &attrs,
            );
        }
        if !enabled_at(level) {
            return;
        }
        let us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.fields.push(("elapsed_us", Value::U64(us)));
        emit(level, self.target, self.name, &self.fields);
    }
}

/// Pretty-printer sink: one line per event on stderr, filtered by a
/// minimum level.
#[derive(Debug, Default)]
pub struct StderrSink {
    min: Option<Level>,
}

impl StderrSink {
    /// Print events at `Info` and above.
    pub fn new() -> Self {
        StderrSink {
            min: Some(Level::Info),
        }
    }

    /// Print events at `min` and above.
    pub fn with_min(min: Level) -> Self {
        StderrSink { min: Some(min) }
    }
}

impl Sink for StderrSink {
    fn emit(&self, ev: &Event<'_>) {
        if matches!(self.min, Some(min) if ev.level < min) {
            return;
        }
        let mut line = format!("[{:5}] {}::{}", ev.level, ev.target, ev.name);
        for (k, v) in ev.fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(&v.to_string());
        }
        eprintln!("{line}");
    }
}

/// JSON-lines file sink: one JSON object per event, appended to a file.
/// Control-path events (`Info` and above) are flushed as they happen —
/// durability over throughput — while per-frame `Debug` events stay in
/// the `BufWriter` until the next control-path event, an explicit
/// [`flush`](Sink::flush), or drop. Dropping the sink flushes, so a
/// `BERTHA_LOG=json:<path>` run that exits cleanly (via [`clear_sink`],
/// which takes the sink out of the global slot) never strands buffered
/// tail events on the floor.
pub struct JsonLinesSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonLinesSink {
    /// Create (truncating) the file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(JsonLinesSink {
            out: Mutex::new(std::io::BufWriter::new(f)),
        })
    }
}

impl Sink for JsonLinesSink {
    fn emit(&self, ev: &Event<'_>) {
        let line = ev.to_json_line();
        let mut out = self.out.lock();
        let _ = writeln!(out, "{line}");
        if ev.level >= Level::Info {
            let _ = out.flush();
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().flush();
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        let _ = self.out.lock().flush();
    }
}

/// In-memory sink capturing rendered JSON lines; for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// A new, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All captured lines so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }

    /// Number of captured events whose target and name match.
    pub fn count_of(&self, target: &str, name: &str) -> usize {
        let mut needle = String::new();
        needle.push_str("\"target\":");
        json::push_str(&mut needle, target);
        needle.push_str(",\"name\":");
        json::push_str(&mut needle, name);
        self.lines
            .lock()
            .iter()
            .filter(|l| l.contains(&needle))
            .count()
    }
}

impl Sink for MemorySink {
    fn emit(&self, ev: &Event<'_>) {
        self.lines.lock().push(ev.to_json_line());
    }
}

/// Fan an event out to several sinks.
pub struct FanoutSink(Vec<Arc<dyn Sink>>);

impl FanoutSink {
    /// A sink delivering every event to each of `sinks`, in order.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        FanoutSink(sinks)
    }
}

impl Sink for FanoutSink {
    fn emit(&self, ev: &Event<'_>) {
        for s in &self.0 {
            s.emit(ev);
        }
    }

    fn flush(&self) {
        for s in &self.0 {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink slot is process-global; tests that install one must not run
    // concurrently with each other. Serialize them with a lock.
    static TEST_SINK_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_and_macro_skips_debug_fields() {
        let _g = TEST_SINK_LOCK.lock();
        clear_sink();
        assert!(!enabled());
        assert!(!enabled_at(Level::Debug));
        let mut evaluated = false;
        event!(
            Level::Debug,
            "t",
            "n",
            "k" = {
                evaluated = true;
                1u64
            }
        );
        assert!(!evaluated, "debug field evaluated with no sink");
    }

    #[test]
    fn info_events_feed_flight_recorder_without_sink() {
        let _g = TEST_SINK_LOCK.lock();
        clear_sink();
        assert!(!enabled());
        assert!(enabled_at(Level::Info));
        let counts_before = events_by_level();
        event!(Level::Info, "t", "flight-feed-test", "k" = 7u64);
        let counts_after = events_by_level();
        assert_eq!(counts_after[1].1, counts_before[1].1 + 1);
        let hit = flight::snapshot_lines()
            .iter()
            .any(|l| l.contains("\"name\":\"flight-feed-test\"") && l.contains("\"k\":7"));
        assert!(hit, "info event missing from flight ring");
    }

    #[test]
    fn sink_lowers_gate_to_debug() {
        let _g = TEST_SINK_LOCK.lock();
        let sink = Arc::new(MemorySink::new());
        set_sink(sink.clone());
        assert!(enabled_at(Level::Debug));
        event!(Level::Debug, "t", "debug-through-sink");
        clear_sink();
        assert!(!enabled_at(Level::Debug));
        assert_eq!(sink.count_of("t", "debug-through-sink"), 1);
        // Debug events never reach the flight ring, even with a sink.
        let in_ring = flight::snapshot_lines()
            .iter()
            .any(|l| l.contains("\"name\":\"debug-through-sink\""));
        assert!(!in_ring, "debug event leaked into flight ring");
    }

    #[test]
    fn install_spec_parses_and_rejects() {
        let _g = TEST_SINK_LOCK.lock();
        clear_sink();
        assert_eq!(install_spec("off"), Ok(false));
        assert_eq!(install_spec(""), Ok(false));
        assert!(!enabled());
        assert!(install_spec("verbose").is_err());
        let path = std::env::temp_dir().join(format!(
            "bertha-install-spec-test-{}.jsonl",
            std::process::id()
        ));
        assert_eq!(install_spec(&format!("json:{}", path.display())), Ok(true));
        assert!(enabled());
        event!(Level::Info, "t", "via-env-sink");
        clear_sink();
        let content = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(content.contains("via-env-sink"), "{content}");
        assert_eq!(install_spec("pretty"), Ok(true));
        assert!(enabled());
        clear_sink();
    }

    #[test]
    fn memory_sink_captures_events() {
        let _g = TEST_SINK_LOCK.lock();
        let sink = Arc::new(MemorySink::new());
        set_sink(sink.clone());
        event!(Level::Warn, "reneg", "swap", "epoch" = 2u64, "ok" = true);
        event!(Level::Info, "reneg", "propose");
        clear_sink();
        event!(Level::Info, "reneg", "after-clear");
        let lines = sink.lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"level\":\"warn\""), "{}", lines[0]);
        assert!(lines[0].contains("\"epoch\":2"), "{}", lines[0]);
        assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
        assert_eq!(sink.count_of("reneg", "swap"), 1);
        assert_eq!(sink.count_of("reneg", "after-clear"), 0);
    }

    #[test]
    fn fanout_delivers_to_every_sink_in_registration_order() {
        // A sink that logs (tag, event-name) into a shared journal, so
        // the interleaving across fanout members is observable.
        struct Tagged {
            tag: usize,
            journal: Arc<Mutex<Vec<(usize, String)>>>,
        }
        impl Sink for Tagged {
            fn emit(&self, ev: &Event<'_>) {
                self.journal.lock().push((self.tag, ev.name.to_owned()));
            }
        }

        let _g = TEST_SINK_LOCK.lock();
        let journal = Arc::new(Mutex::new(Vec::new()));
        let fan = FanoutSink::new(vec![
            Arc::new(Tagged {
                tag: 0,
                journal: Arc::clone(&journal),
            }) as Arc<dyn Sink>,
            Arc::new(Tagged {
                tag: 1,
                journal: Arc::clone(&journal),
            }),
            Arc::new(Tagged {
                tag: 2,
                journal: Arc::clone(&journal),
            }),
        ]);
        set_sink(Arc::new(fan));
        event!(Level::Info, "t", "first");
        event!(Level::Info, "t", "second");
        clear_sink();

        // Each event fans out to sinks 0, 1, 2 in registration order, and
        // the second event starts only after the first finished fanning
        // out — emission is synchronous, so events never interleave.
        let got = journal.lock().clone();
        let want: Vec<(usize, String)> = [
            (0, "first"),
            (1, "first"),
            (2, "first"),
            (0, "second"),
            (1, "second"),
            (2, "second"),
        ]
        .into_iter()
        .map(|(t, n)| (t, n.to_owned()))
        .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn span_emits_elapsed() {
        let _g = TEST_SINK_LOCK.lock();
        let sink = Arc::new(MemorySink::new());
        set_sink(sink.clone());
        let sp = Span::begin("negotiate", "handshake").with("attempt", 1u64);
        sp.end();
        clear_sink();
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"elapsed_us\":"), "{}", lines[0]);
        assert!(lines[0].contains("\"attempt\":1"), "{}", lines[0]);
    }

    #[test]
    fn span_with_trace_feeds_span_buffer() {
        let _b = crate::span::TEST_LOCK.lock();
        let ctx = crate::tracectx::TraceContext {
            trace_id: 0x7e57_57a0,
            span_id: 11,
            sampled: true,
        };
        Span::begin("negotiate", "client")
            .with("attempt", 2u64)
            .with_trace(ctx, 5)
            .end();
        let recs = crate::span::records_for_trace(ctx.trace_id);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].op, "negotiate.client");
        assert_eq!(recs[0].span_id, 11);
        assert_eq!(recs[0].parent_span_id, 5);
        assert_eq!(
            recs[0].attrs,
            vec![("attempt".to_string(), "2".to_string())]
        );
        // Unsampled contexts feed nothing.
        let off = crate::tracectx::TraceContext {
            trace_id: 0x7e57_57a1,
            span_id: 12,
            sampled: false,
        };
        Span::begin("negotiate", "client").with_trace(off, 0).end();
        assert!(crate::span::records_for_trace(off.trace_id).is_empty());
        crate::span::clear();
    }

    #[test]
    fn json_lines_sink_writes_file() {
        let _g = TEST_SINK_LOCK.lock();
        let path = std::env::temp_dir().join(format!(
            "bertha-telemetry-test-{}.jsonl",
            std::process::id()
        ));
        let sink = Arc::new(JsonLinesSink::create(&path).unwrap());
        set_sink(sink);
        event!(Level::Info, "agent", "start", "pid" = 42u64);
        clear_sink();
        let content = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(content.contains("\"pid\":42"), "{content}");
        assert!(content.ends_with('\n'));
    }

    #[test]
    fn json_lines_sink_flushes_buffered_debug_events_on_drop() {
        // Regression: Debug events are buffered (only Info+ flush
        // eagerly), so a sink dropped without an explicit flush —
        // e.g. an example replacing or discarding its sink — used to
        // strand the buffered tail. Drop must flush.
        let path = std::env::temp_dir().join(format!(
            "bertha-drop-flush-test-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonLinesSink::create(&path).unwrap();
        sink.emit(&Event {
            level: Level::Debug,
            target: "t",
            name: "buffered-tail",
            fields: &[],
        });
        // Still buffered: a short Debug line fits comfortably inside the
        // BufWriter, so nothing has reached the file yet.
        let before = std::fs::read_to_string(&path).unwrap();
        assert!(!before.contains("buffered-tail"), "{before}");
        drop(sink);
        let content = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(content.contains("buffered-tail"), "{content}");
        assert!(content.ends_with('\n'));
    }

    #[test]
    fn stderr_sink_filters_below_min() {
        // Just exercise the formatting paths; output goes to stderr.
        let s = StderrSink::with_min(Level::Error);
        s.emit(&Event {
            level: Level::Info,
            target: "t",
            name: "dropped",
            fields: &[],
        });
        let s = StderrSink::new();
        s.emit(&Event {
            level: Level::Warn,
            target: "t",
            name: "printed",
            fields: &[("k", Value::Str("v".into()))],
        });
    }
}

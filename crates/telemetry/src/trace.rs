//! Structured events, duration spans, and pluggable sinks.
//!
//! The fast path is the *disabled* path: [`enabled`] is one relaxed
//! atomic load, and the [`event!`] macro checks it before evaluating any
//! field expression, so uninstrumented runs pay one predictable branch
//! per event site and nothing else. Installing a sink with [`set_sink`]
//! flips the flag; emission then takes a `parking_lot` read lock on the
//! sink slot (uncontended except during sink swaps) and calls
//! [`Sink::emit`].

use crate::json;
use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Verbose diagnostic detail.
    Debug,
    /// Normal operational events (negotiation outcomes, swaps).
    Info,
    /// Degraded but functioning (lease expiry, fallback activation).
    Warn,
    /// Failures (handshake exhaustion, dead peers).
    Error,
}

impl Level {
    /// Lowercase name, as emitted in JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.as_str())
    }
}

/// A field value. Constructed via `From` impls so call sites can pass
/// native types: `"epoch" = epoch` rather than wrapping manually.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl Value {
    fn render_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => json::push_f64(out, *v),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => json::push_str(out, s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v.into())
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v.into())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One structured event, borrowed for the duration of [`Sink::emit`].
#[derive(Debug)]
pub struct Event<'a> {
    /// Severity.
    pub level: Level,
    /// Subsystem (`negotiate`, `reneg`, `discovery`, `shard`, `chunnel`,
    /// `agent`).
    pub target: &'a str,
    /// Event name within the target.
    pub name: &'a str,
    /// Key/value fields.
    pub fields: &'a [(&'a str, Value)],
}

impl Event<'_> {
    /// Render as a single JSON-lines record (no trailing newline):
    /// `{"ts_us":...,"level":"...","target":"...","name":"...","fields":{...}}`.
    pub fn to_json_line(&self) -> String {
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or(Duration::ZERO)
            .as_micros();
        let mut out = String::with_capacity(96);
        out.push_str("{\"ts_us\":");
        out.push_str(&ts.to_string());
        out.push_str(",\"level\":\"");
        out.push_str(self.level.as_str());
        out.push_str("\",\"target\":");
        json::push_str(&mut out, self.target);
        out.push_str(",\"name\":");
        json::push_str(&mut out, self.name);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, k);
            v.render_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// Where emitted events go. Implementations must tolerate concurrent
/// `emit` calls.
pub trait Sink: Send + Sync {
    /// Deliver one event.
    fn emit(&self, ev: &Event<'_>);

    /// Flush any buffering (no-op by default).
    fn flush(&self) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// True if a sink is installed. The hot-path gate: one relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install `sink` as the process-global event sink and enable emission.
/// Replaces any previous sink.
pub fn set_sink(sink: Arc<dyn Sink>) {
    *SINK.write() = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Remove the sink (flushing it) and disable emission.
pub fn clear_sink() {
    ENABLED.store(false, Ordering::SeqCst);
    if let Some(s) = SINK.write().take() {
        s.flush();
    }
}

/// Emit one event to the installed sink, if any. Callers normally use the
/// [`event!`] macro, which skips field construction when disabled.
pub fn emit(level: Level, target: &str, name: &str, fields: &[(&str, Value)]) {
    if !enabled() {
        return;
    }
    let guard = SINK.read();
    if let Some(sink) = guard.as_ref() {
        sink.emit(&Event {
            level,
            target,
            name,
            fields,
        });
    }
}

/// Emit a structured event if a sink is installed.
///
/// ```
/// use bertha_telemetry::{event, Level};
/// event!(Level::Info, "reneg", "swap", "epoch" = 1u64, "impl" = "relay/soft");
/// ```
///
/// Field expressions are not evaluated when no sink is installed.
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, $name:expr $(, $k:literal = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit(
                $level,
                $target,
                $name,
                &[$(($k, $crate::Value::from($v))),*],
            );
        }
    };
}

/// A duration measurement that emits an event (with an `elapsed_us` field)
/// when ended. Spans sit on control paths — negotiation rounds, epoch
/// swaps — never on per-frame paths, so they unconditionally read the
/// clock; only the emission is gated.
#[derive(Debug)]
pub struct Span {
    target: &'static str,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
}

impl Span {
    /// Start a span now.
    pub fn begin(target: &'static str, name: &'static str) -> Self {
        Span {
            target,
            name,
            start: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// Attach a field (builder style).
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.add(key, value);
        self
    }

    /// Attach a field.
    pub fn add(&mut self, key: &'static str, value: impl Into<Value>) {
        self.fields.push((key, value.into()));
    }

    /// Time since the span began.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// End the span, emitting an `Info` event with `elapsed_us` appended.
    pub fn end(self) {
        self.end_level(Level::Info);
    }

    /// End the span at an explicit level.
    pub fn end_level(mut self, level: Level) {
        if !enabled() {
            return;
        }
        let us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.fields.push(("elapsed_us", Value::U64(us)));
        emit(level, self.target, self.name, &self.fields);
    }
}

/// Pretty-printer sink: one line per event on stderr, filtered by a
/// minimum level.
#[derive(Debug, Default)]
pub struct StderrSink {
    min: Option<Level>,
}

impl StderrSink {
    /// Print events at `Info` and above.
    pub fn new() -> Self {
        StderrSink {
            min: Some(Level::Info),
        }
    }

    /// Print events at `min` and above.
    pub fn with_min(min: Level) -> Self {
        StderrSink { min: Some(min) }
    }
}

impl Sink for StderrSink {
    fn emit(&self, ev: &Event<'_>) {
        if matches!(self.min, Some(min) if ev.level < min) {
            return;
        }
        let mut line = format!("[{:5}] {}::{}", ev.level, ev.target, ev.name);
        for (k, v) in ev.fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(&v.to_string());
        }
        eprintln!("{line}");
    }
}

/// JSON-lines file sink: one JSON object per event, appended to a file and
/// flushed per event (events are low-rate; durability over throughput).
pub struct JsonLinesSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonLinesSink {
    /// Create (truncating) the file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(JsonLinesSink {
            out: Mutex::new(std::io::BufWriter::new(f)),
        })
    }
}

impl Sink for JsonLinesSink {
    fn emit(&self, ev: &Event<'_>) {
        let line = ev.to_json_line();
        let mut out = self.out.lock();
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }

    fn flush(&self) {
        let _ = self.out.lock().flush();
    }
}

/// In-memory sink capturing rendered JSON lines; for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// A new, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All captured lines so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }

    /// Number of captured events whose target and name match.
    pub fn count_of(&self, target: &str, name: &str) -> usize {
        let mut needle = String::new();
        needle.push_str("\"target\":");
        json::push_str(&mut needle, target);
        needle.push_str(",\"name\":");
        json::push_str(&mut needle, name);
        self.lines
            .lock()
            .iter()
            .filter(|l| l.contains(&needle))
            .count()
    }
}

impl Sink for MemorySink {
    fn emit(&self, ev: &Event<'_>) {
        self.lines.lock().push(ev.to_json_line());
    }
}

/// Fan an event out to several sinks.
pub struct FanoutSink(Vec<Arc<dyn Sink>>);

impl FanoutSink {
    /// A sink delivering every event to each of `sinks`, in order.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        FanoutSink(sinks)
    }
}

impl Sink for FanoutSink {
    fn emit(&self, ev: &Event<'_>) {
        for s in &self.0 {
            s.emit(ev);
        }
    }

    fn flush(&self) {
        for s in &self.0 {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink slot is process-global; tests that install one must not run
    // concurrently with each other. Serialize them with a lock.
    static TEST_SINK_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_and_macro_skips_fields() {
        let _g = TEST_SINK_LOCK.lock();
        clear_sink();
        assert!(!enabled());
        let mut evaluated = false;
        event!(
            Level::Info,
            "t",
            "n",
            "k" = {
                evaluated = true;
                1u64
            }
        );
        assert!(!evaluated, "field evaluated while disabled");
    }

    #[test]
    fn memory_sink_captures_events() {
        let _g = TEST_SINK_LOCK.lock();
        let sink = Arc::new(MemorySink::new());
        set_sink(sink.clone());
        event!(Level::Warn, "reneg", "swap", "epoch" = 2u64, "ok" = true);
        event!(Level::Info, "reneg", "propose");
        clear_sink();
        event!(Level::Info, "reneg", "after-clear");
        let lines = sink.lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"level\":\"warn\""), "{}", lines[0]);
        assert!(lines[0].contains("\"epoch\":2"), "{}", lines[0]);
        assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
        assert_eq!(sink.count_of("reneg", "swap"), 1);
        assert_eq!(sink.count_of("reneg", "after-clear"), 0);
    }

    #[test]
    fn span_emits_elapsed() {
        let _g = TEST_SINK_LOCK.lock();
        let sink = Arc::new(MemorySink::new());
        set_sink(sink.clone());
        let sp = Span::begin("negotiate", "handshake").with("attempt", 1u64);
        sp.end();
        clear_sink();
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"elapsed_us\":"), "{}", lines[0]);
        assert!(lines[0].contains("\"attempt\":1"), "{}", lines[0]);
    }

    #[test]
    fn json_lines_sink_writes_file() {
        let _g = TEST_SINK_LOCK.lock();
        let path = std::env::temp_dir().join(format!(
            "bertha-telemetry-test-{}.jsonl",
            std::process::id()
        ));
        let sink = Arc::new(JsonLinesSink::create(&path).unwrap());
        set_sink(sink);
        event!(Level::Info, "agent", "start", "pid" = 42u64);
        clear_sink();
        let content = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(content.contains("\"pid\":42"), "{content}");
        assert!(content.ends_with('\n'));
    }

    #[test]
    fn stderr_sink_filters_below_min() {
        // Just exercise the formatting paths; output goes to stderr.
        let s = StderrSink::with_min(Level::Error);
        s.emit(&Event {
            level: Level::Info,
            target: "t",
            name: "dropped",
            fields: &[],
        });
        let s = StderrSink::new();
        s.emit(&Event {
            level: Level::Warn,
            target: "t",
            name: "printed",
            fields: &[("k", Value::Str("v".into()))],
        });
    }
}

//! Per-layer stack profiling: where does a message's wall time go?
//!
//! A composed chunnel stack is opaque to the existing telemetry — PR 2/3
//! record *that* a send was slow, never *which layer* (reliability?
//! batching? crypto? the transport?) the time went to. This module adds
//! the attribution: every layer wraps its connection in a
//! `ProfiledConn` (in `bertha::conn`), which owns a [`LayerTimer`] here.
//! The timer resolves its metric handles once, at construction:
//!
//! - `stack.<layer>.send_us` / `stack.<layer>.recv_us` — log2 histograms
//!   of *inclusive* wall time: the time spent in this layer **and every
//!   layer below it**. Per-layer exclusive time is computed at display
//!   time by differencing adjacent layers (see `bertha-top`), which
//!   keeps the hot path to two clock reads and one histogram record.
//! - `stack.<layer>.{send,recv}_frames` / `.{send,recv}_bytes` —
//!   counters, recorded on every successful frame while profiling is on.
//!
//! `recv_us` includes time blocked waiting for traffic below — it is a
//! call-to-return measurement, not a processing-cost measurement; only
//! differences between adjacent layers isolate a layer's own cost.
//!
//! **Gating.** Profiling is off by default and costs one relaxed atomic
//! load plus a branch per operation when off (`ProfiledConn` forwards
//! straight to the inner connection — no extra allocation, no clock
//! reads). `BERTHA_PROFILE` turns it on: `1`/`on` times every frame,
//! `1/N` (or bare `N`) counts every frame but times only one in `N`,
//! amortizing the two `Instant::now` calls. [`set_profiling`] is the
//! programmatic override for tests and benches. The sampled
//! configuration must stay inside the workspace's ≤2% no-sink overhead
//! budget (`telemetry_overhead` enforces this in CI).
//!
//! **Exemplars.** When a timed send observes a new per-layer maximum,
//! the current [`last sampled trace context`](crate::tracectx::last_sampled)
//! (if any) is attached as an OpenMetrics exemplar on that histogram, so
//! a p99 outlier in a scrape links straight to a trace id — and from
//! there to a flight-recorder dump. The link is correlational ("a trace
//! that was live around the outlier"), not causal.

use crate::metrics::{counter, histogram, Counter, Histogram};
use crate::tracectx;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Profiling denominator: `u64::MAX` = uninitialised (read the env var),
/// 0 = off, 1 = time every frame, N = time one frame in N.
static DENOM: AtomicU64 = AtomicU64::new(u64::MAX);

/// The active profiling denominator: 0 = off, 1 = every frame, N = one
/// frame in N. Reads `BERTHA_PROFILE` on first use.
pub fn profile_denom() -> u64 {
    let d = DENOM.load(Ordering::Relaxed);
    if d != u64::MAX {
        return d;
    }
    let parsed = std::env::var("BERTHA_PROFILE")
        .ok()
        .map(|v| tracectx::parse_sample(&v))
        .unwrap_or(0);
    DENOM.store(parsed, Ordering::Relaxed);
    parsed
}

/// Override the profiling rate: 0 = off, 1 = every frame, N = one in N.
/// Takes precedence over `BERTHA_PROFILE`.
pub fn set_profiling(denom: u64) {
    DENOM.store(denom, Ordering::Relaxed);
}

/// True if profiling is on at any rate: the hot-path gate, one relaxed
/// load plus a compare (after first-use initialisation).
#[inline]
pub fn profiling_enabled() -> bool {
    profile_denom() != 0
}

/// Normalise a chunnel implementation name (`Negotiate::NAME`, e.g.
/// `reliable/arq`) into the label used in metric names: lowercase, with
/// every non-alphanumeric run replaced by `_` (`reliable_arq`). The same
/// transform lets `bertha-top` join `StackIntrospect` slot names to
/// `stack.<layer>.*` metrics.
pub fn layer_label(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut gap = false;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            if gap && !out.is_empty() {
                out.push('_');
            }
            gap = false;
            out.push(c.to_ascii_lowercase());
        } else {
            gap = true;
        }
    }
    if out.is_empty() {
        out.push_str("unknown");
    }
    out
}

/// One direction's pre-resolved handles within a [`LayerTimer`].
#[derive(Debug)]
struct DirMetrics {
    us: Arc<Histogram>,
    frames: Arc<Counter>,
    bytes: Arc<Counter>,
    /// Largest timed observation so far, for exemplar selection.
    max_us: AtomicU64,
    /// Frame tick for 1-in-N timing.
    tick: AtomicU64,
    /// Full `stack.<layer>.<dir>_us` name, the exemplar key.
    us_name: String,
    /// Span op name for timed frames (`stack.send` / `stack.recv`).
    op: &'static str,
    /// Normalised layer label, attached to span records as an attr.
    label: String,
}

impl DirMetrics {
    fn new(label: &str, dir: &str) -> Self {
        let us_name = format!("stack.{label}.{dir}_us");
        DirMetrics {
            us: histogram(&us_name),
            frames: counter(&format!("stack.{label}.{dir}_frames")),
            bytes: counter(&format!("stack.{label}.{dir}_bytes")),
            max_us: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            us_name,
            op: if dir == "send" {
                "stack.send"
            } else {
                "stack.recv"
            },
            label: label.to_owned(),
        }
    }

    /// Start timing this frame, or `None` when 1-in-N sampling skips it.
    fn begin(&self) -> Option<Instant> {
        match profile_denom() {
            0 => None,
            1 => Some(Instant::now()),
            n => (self.tick.fetch_add(1, Ordering::Relaxed) % n == 0).then(Instant::now),
        }
    }

    /// Account a completed frame: counters always (when `ok`), the
    /// latency histogram only if `begin` handed out a start time.
    fn finish(&self, start: Option<Instant>, bytes: u64, ok: bool) {
        if ok {
            self.frames.incr();
            self.bytes.add(bytes);
        }
        if let Some(start) = start {
            let us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            self.us.record(us);
            let last = tracectx::last_sampled();
            // A new maximum is rare by construction; only then do we take
            // the exemplar lock.
            if us > self.max_us.fetch_max(us, Ordering::Relaxed) {
                if let Some(ctx) = &last {
                    record_exemplar(&self.us_name, us, ctx);
                }
            }
            // Timed frames of a sampled trace also feed the span buffer,
            // so an assembled waterfall carries per-layer bars. The
            // attribution is the exemplar's: the most recent sampled
            // trace, not a causal link. With tracing off (`last` =
            // `None`) this is one mutex read — the overhead budget's
            // no-sink configuration never reaches the push.
            if let Some(ctx) = last {
                crate::span::record(
                    self.op,
                    &crate::span::host_tag(),
                    &tracectx::TraceContext {
                        trace_id: ctx.trace_id,
                        span_id: tracectx::next_span_id(),
                        sampled: true,
                    },
                    ctx.span_id,
                    start,
                    crate::span::SpanStatus::Ok,
                    &[("layer", self.label.clone())],
                );
            }
        }
    }
}

/// Pre-resolved per-layer metric handles, one per wrapped connection.
/// Construction does the registry lookups (six name resolutions); after
/// that, every recorded frame is a handful of relaxed atomic RMWs.
#[derive(Debug)]
pub struct LayerTimer {
    label: String,
    send: DirMetrics,
    recv: DirMetrics,
}

impl LayerTimer {
    /// A timer for the layer named `name` (a `Negotiate::NAME` such as
    /// `reliable/arq`; normalised via [`layer_label`]).
    pub fn new(name: &str) -> Self {
        let label = layer_label(name);
        let send = DirMetrics::new(&label, "send");
        let recv = DirMetrics::new(&label, "recv");
        LayerTimer { label, send, recv }
    }

    /// The normalised layer label (`reliable_arq`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Start timing a send; `None` when this frame is sample-skipped.
    #[inline]
    pub fn begin_send(&self) -> Option<Instant> {
        self.send.begin()
    }

    /// Account a completed send (`ok` = the send succeeded).
    #[inline]
    pub fn finish_send(&self, start: Option<Instant>, bytes: u64, ok: bool) {
        self.send.finish(start, bytes, ok);
    }

    /// Start timing a recv; `None` when this frame is sample-skipped.
    #[inline]
    pub fn begin_recv(&self) -> Option<Instant> {
        self.recv.begin()
    }

    /// Account a completed recv (`ok` = a frame actually arrived).
    #[inline]
    pub fn finish_recv(&self, start: Option<Instant>, bytes: u64, ok: bool) {
        self.recv.finish(start, bytes, ok);
    }
}

/// One exemplar: the observed value, the trace it links to, and when it
/// was recorded (unix microseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value (microseconds, for `_us` histograms).
    pub value: u64,
    /// 32-hex-digit trace id the outlier links to.
    pub trace_hex: String,
    /// Unix timestamp of the observation, in microseconds.
    pub ts_us: u64,
}

/// Histogram name → current exemplar. Written only on a new per-layer
/// maximum (rare); read by the OpenMetrics exporter at scrape time.
static EXEMPLARS: RwLock<BTreeMap<String, Exemplar>> = RwLock::new(BTreeMap::new());

fn record_exemplar(name: &str, value: u64, ctx: &tracectx::TraceContext) {
    let ts_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_micros()
        .min(u64::MAX as u128) as u64;
    EXEMPLARS.write().insert(
        name.to_owned(),
        Exemplar {
            value,
            trace_hex: ctx.trace_hex(),
            ts_us,
        },
    );
}

/// A copy of every current exemplar, keyed by histogram name.
pub fn exemplars() -> BTreeMap<String, Exemplar> {
    EXEMPLARS.read().clone()
}

/// Drop all exemplars (tests).
pub fn clear_exemplars() {
    EXEMPLARS.write().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use parking_lot::Mutex;

    // The profiling denominator and exemplar map are process-global.
    static PROFILE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn layer_labels_normalise() {
        assert_eq!(layer_label("reliable/arq"), "reliable_arq");
        assert_eq!(layer_label("encrypt/toy-stream"), "encrypt_toy_stream");
        assert_eq!(layer_label("Batch/Linger"), "batch_linger");
        assert_eq!(layer_label("//"), "unknown");
        assert_eq!(layer_label("/udp"), "udp");
    }

    #[test]
    fn disabled_timer_hands_out_no_starts() {
        let _g = PROFILE_LOCK.lock();
        set_profiling(0);
        let t = LayerTimer::new("test/off");
        assert!(t.begin_send().is_none());
        assert!(t.begin_recv().is_none());
        // Counters still advance when explicitly finished (the conn
        // wrapper never calls finish while disabled, but the timer
        // itself doesn't care).
        set_profiling(0);
    }

    #[test]
    fn enabled_timer_records_all_six_metrics() {
        let _g = PROFILE_LOCK.lock();
        set_profiling(1);
        let t = LayerTimer::new("test/full-rate");
        let start = t.begin_send();
        assert!(start.is_some());
        t.finish_send(start, 100, true);
        let start = t.begin_recv();
        t.finish_recv(start, 40, true);
        let snap = metrics::global().snapshot();
        assert_eq!(snap.counters["stack.test_full_rate.send_frames"], 1);
        assert_eq!(snap.counters["stack.test_full_rate.send_bytes"], 100);
        assert_eq!(snap.counters["stack.test_full_rate.recv_frames"], 1);
        assert_eq!(snap.counters["stack.test_full_rate.recv_bytes"], 40);
        assert_eq!(snap.histograms["stack.test_full_rate.send_us"].count, 1);
        assert_eq!(snap.histograms["stack.test_full_rate.recv_us"].count, 1);
        set_profiling(0);
    }

    #[test]
    fn sampled_timer_times_one_in_n_but_counts_all() {
        let _g = PROFILE_LOCK.lock();
        set_profiling(4);
        let t = LayerTimer::new("test/sampled");
        let mut timed = 0;
        for _ in 0..16 {
            let start = t.begin_send();
            if start.is_some() {
                timed += 1;
            }
            t.finish_send(start, 1, true);
        }
        assert_eq!(timed, 4);
        let snap = metrics::global().snapshot();
        assert_eq!(snap.counters["stack.test_sampled.send_frames"], 16);
        assert_eq!(snap.histograms["stack.test_sampled.send_us"].count, 4);
        set_profiling(0);
    }

    #[test]
    fn failed_frames_do_not_count() {
        let _g = PROFILE_LOCK.lock();
        set_profiling(1);
        let t = LayerTimer::new("test/failures");
        let start = t.begin_send();
        t.finish_send(start, 512, false);
        let snap = metrics::global().snapshot();
        assert_eq!(snap.counters["stack.test_failures.send_frames"], 0);
        assert_eq!(snap.counters["stack.test_failures.send_bytes"], 0);
        // Time is still recorded — a failed send also spent wall time.
        assert_eq!(snap.histograms["stack.test_failures.send_us"].count, 1);
        set_profiling(0);
    }

    #[test]
    fn new_maximum_with_sampled_trace_records_exemplar() {
        let _g = PROFILE_LOCK.lock();
        clear_exemplars();
        tracectx::set_sample(1);
        let ctx = tracectx::TraceContext::new_root();
        tracectx::bind_nonce(b"profile-exemplar-test", ctx);
        set_profiling(1);
        let t = LayerTimer::new("test/exemplar");
        let start = t.begin_send();
        std::thread::sleep(Duration::from_millis(2));
        t.finish_send(start, 1, true);
        let ex = exemplars();
        let e = ex
            .get("stack.test_exemplar.send_us")
            .expect("exemplar recorded on first (maximal) observation");
        assert_eq!(e.trace_hex, ctx.trace_hex());
        assert!(e.value >= 1000, "slept 2ms, got {}us", e.value);
        assert!(e.ts_us > 0);
        set_profiling(0);
        tracectx::set_sample(0);
        clear_exemplars();
    }
}

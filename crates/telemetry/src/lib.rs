//! Telemetry for the Bertha workspace: a lock-cheap metrics registry and a
//! span/event tracing API with pluggable sinks.
//!
//! Design goals, in order:
//!
//! 1. **Zero cost when disabled.** Events are gated on a single relaxed
//!    atomic load plus a compare ([`enabled_at`]); with no sink installed
//!    the `event!` macro drops `Debug` (per-frame) events at that branch
//!    and never materialises their fields, while `Info`-and-above
//!    control-path events feed the always-on [`flight`] recorder ring.
//!    Metrics are always on, but every metric operation is a relaxed
//!    atomic RMW on a pre-resolved handle — no global locks, no name
//!    lookups, no allocation on the hot path.
//! 2. **No dependencies beyond the workspace.** JSON output is rendered by
//!    hand (the workspace deliberately carries no `serde_json`), and the
//!    only external crate used is `parking_lot`, already a workspace
//!    dependency.
//! 3. **Inspectable from outside.** [`Registry::snapshot`] produces a
//!    [`Snapshot`] renderable as a single JSON object, which is what the
//!    discovery agent's `dump-metrics` RPC and the bench crate's
//!    `BENCH_*.json` emission both serve.
//!
//! Metric handles come from the process-global registry ([`counter`],
//! [`gauge`], [`histogram`]): resolve once at construction time, then
//! increment for free. Per-object counters that should *also* roll up into
//! the global registry use [`MirroredCounter`].
//!
//! Tracing is event-structured: an [`Event`] is a level, a `target`
//! (subsystem: `negotiate`, `reneg`, `discovery`, `shard`, `chunnel`,
//! `agent`), a name, and key/value fields. [`Span`] measures a duration
//! and emits it as an event on [`Span::end`]. Install a [`Sink`]
//! ([`StderrSink`], [`JsonLinesSink`], [`MemorySink`], or a [`FanoutSink`]
//! of several) with [`set_sink`] — or let `BERTHA_LOG` pick one via
//! [`install_from_env`]; until then `Debug` events are dropped at the
//! `enabled_at()` check and `Info`-and-above land only in the flight
//! recorder.
//!
//! Cross-host tracing lives in [`tracectx`]: a [`TraceContext`] carried
//! in-band on negotiation and (sampled) data frames, so spans on both
//! endpoints share one trace id with parent/child links.

#![warn(missing_docs)]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod openmetrics;
pub mod profile;
pub mod span;
pub mod trace;
pub mod tracectx;

pub use metrics::{
    counter, gauge, global, histogram, Counter, Gauge, Histogram, HistogramSnapshot,
    MirroredCounter, Registry, Snapshot,
};
pub use profile::{layer_label, profiling_enabled, set_profiling, Exemplar, LayerTimer};
pub use trace::{
    clear_sink, emit, enabled, enabled_at, events_by_level, install_from_env, install_spec,
    set_sink, uptime, Event, FanoutSink, JsonLinesSink, Level, MemorySink, Sink, Span, StderrSink,
    Value,
};
pub use span::{SpanRecord, SpanStatus};
pub use tracectx::{bind_nonce, nonce_context, set_sample, trace_hex, TraceContext};

//! Telemetry for the Bertha workspace: a lock-cheap metrics registry and a
//! span/event tracing API with pluggable sinks.
//!
//! Design goals, in order:
//!
//! 1. **Zero cost when disabled.** Events are gated on a single relaxed
//!    atomic load ([`enabled`]); with no sink installed the `event!` macro
//!    compiles to a branch over that load and never materialises its
//!    fields. Metrics are always on, but every metric operation is a
//!    relaxed atomic RMW on a pre-resolved handle — no global locks, no
//!    name lookups, no allocation on the hot path.
//! 2. **No dependencies beyond the workspace.** JSON output is rendered by
//!    hand (the workspace deliberately carries no `serde_json`), and the
//!    only external crate used is `parking_lot`, already a workspace
//!    dependency.
//! 3. **Inspectable from outside.** [`Registry::snapshot`] produces a
//!    [`Snapshot`] renderable as a single JSON object, which is what the
//!    discovery agent's `dump-metrics` RPC and the bench crate's
//!    `BENCH_*.json` emission both serve.
//!
//! Metric handles come from the process-global registry ([`counter`],
//! [`gauge`], [`histogram`]): resolve once at construction time, then
//! increment for free. Per-object counters that should *also* roll up into
//! the global registry use [`MirroredCounter`].
//!
//! Tracing is event-structured: an [`Event`] is a level, a `target`
//! (subsystem: `negotiate`, `reneg`, `discovery`, `shard`, `chunnel`,
//! `agent`), a name, and key/value fields. [`Span`] measures a duration
//! and emits it as an event on [`Span::end`]. Install a [`Sink`]
//! ([`StderrSink`], [`JsonLinesSink`], [`MemorySink`], or a [`FanoutSink`]
//! of several) with [`set_sink`]; until then everything is dropped at the
//! `enabled()` check.

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod trace;

pub use metrics::{
    counter, gauge, global, histogram, Counter, Gauge, Histogram, HistogramSnapshot,
    MirroredCounter, Registry, Snapshot,
};
pub use trace::{
    clear_sink, emit, enabled, set_sink, Event, FanoutSink, JsonLinesSink, Level, MemorySink, Sink,
    Span, StderrSink, Value,
};

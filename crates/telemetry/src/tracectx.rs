//! Cross-host trace contexts.
//!
//! A [`TraceContext`] is the identity a distributed trace carries across
//! the wire: a 128-bit trace id shared by every span in the trace, a
//! 64-bit span id naming one operation, and a sampled flag deciding
//! whether per-frame data-path events are emitted for this connection.
//!
//! The wire encoding is a fixed 25 bytes — 16 bytes trace id (LE), 8
//! bytes span id (LE), 1 flags byte (bit 0 = sampled) — prepended to
//! negotiation frames under `TAG_NEG_TRACE` and to data frames by the
//! `tracing/inline` chunnel. Fixed-size framing keeps the decode branch
//! on the data path to a length check and a copy.
//!
//! Sampling is **deterministic per trace**: `fnv64(trace_id) % N == 0`
//! for a `1/N` rate, so both endpoints (and any relay) make the same
//! decision from the id alone, with no coordination. The rate comes from
//! `BERTHA_TRACE_SAMPLE` (`off`, `always`, or `1/N`), read once, and can
//! be overridden programmatically with [`set_sample`] for tests.
//!
//! Id generation uses no external RNG crate: ids mix wall-clock nanos,
//! the pid, a process-global counter, and the randomly-seeded std
//! `RandomState` hasher, which is plenty for uniqueness and for the
//! sampler's modulus to be unbiased.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// Size of the fixed wire encoding: 16-byte trace id + 8-byte span id +
/// 1 flags byte.
pub const WIRE_LEN: usize = 25;

/// The identity of one span within a distributed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit id shared by every span in the trace.
    pub trace_id: u128,
    /// 64-bit id of this span.
    pub span_id: u64,
    /// Whether per-frame data-path events are emitted for this trace.
    pub sampled: bool,
}

impl TraceContext {
    /// Start a new trace: fresh trace id, fresh root span id, sampled
    /// according to the configured rate.
    pub fn new_root() -> Self {
        let trace_id = ((next_id() as u128) << 64) | next_id() as u128;
        TraceContext {
            trace_id,
            span_id: next_id(),
            sampled: sample_decision(trace_id),
        }
    }

    /// A child span in the same trace: same trace id and sampled flag,
    /// fresh span id. The caller records `self.span_id` as the child's
    /// parent when emitting the child's events.
    pub fn child(&self) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            span_id: next_id(),
            sampled: self.sampled,
        }
    }

    /// Encode to the fixed 25-byte wire form.
    pub fn encode(&self) -> [u8; WIRE_LEN] {
        let mut out = [0u8; WIRE_LEN];
        out[..16].copy_from_slice(&self.trace_id.to_le_bytes());
        out[16..24].copy_from_slice(&self.span_id.to_le_bytes());
        out[24] = self.sampled as u8;
        out
    }

    /// Decode from the fixed wire form; `None` if `buf` is too short.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < WIRE_LEN {
            return None;
        }
        let trace_id = u128::from_le_bytes(buf[..16].try_into().unwrap());
        let span_id = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        Some(TraceContext {
            trace_id,
            span_id,
            sampled: buf[24] & 1 == 1,
        })
    }

    /// The trace id as the 32-hex-digit string used in event fields.
    pub fn trace_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }
}

/// One shared 32-hex-digit rendering for ids stored as `u128`.
pub fn trace_hex(trace_id: u128) -> String {
    format!("{trace_id:032x}")
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The FNV-1a hash behind every per-trace decision (head sampling here,
/// tail downsampling in the collector), exported so out-of-process
/// components reach the *same* deterministic verdict for a trace id that
/// every host reached when stamping it.
pub fn hash64(bytes: &[u8]) -> u64 {
    fnv64(bytes)
}

static ID_COUNTER: AtomicU64 = AtomicU64::new(0);

fn entropy_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        // RandomState is seeded per-process from OS randomness; one
        // finish() of an empty hasher extracts that seed for free.
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u32(std::process::id());
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        h.write_u64(nanos);
        h.finish()
    })
}

fn next_id() -> u64 {
    // An FNV mix of (per-process random seed, counter) gives unique,
    // well-distributed, nonzero-in-practice ids without an RNG crate.
    let n = ID_COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&entropy_seed().to_le_bytes());
    bytes[8..].copy_from_slice(&n.to_le_bytes());
    let id = fnv64(&bytes);
    if id == 0 {
        1
    } else {
        id
    }
}

/// A fresh span id from the process-global generator, for spans that
/// need an id distinct from any `TraceContext` (e.g. per-frame profile
/// samples parented under a connection's span).
pub(crate) fn next_span_id() -> u64 {
    next_id()
}

/// Sampling denominator: 0 = off, 1 = always, N = one trace in N.
/// `u64::MAX` means "not yet initialised, read the env var".
static SAMPLE_DENOM: AtomicU64 = AtomicU64::new(u64::MAX);

fn sample_denom() -> u64 {
    let d = SAMPLE_DENOM.load(Ordering::Relaxed);
    if d != u64::MAX {
        return d;
    }
    let parsed = std::env::var("BERTHA_TRACE_SAMPLE")
        .ok()
        .map(|v| parse_sample(&v))
        .unwrap_or(0);
    SAMPLE_DENOM.store(parsed, Ordering::Relaxed);
    parsed
}

/// Parse a `BERTHA_TRACE_SAMPLE` value: `off`/`0` disable, `always`/
/// `on`/`1` sample everything, `1/N` (or bare `N`) samples one trace in
/// `N`. Unparseable input disables sampling.
pub fn parse_sample(v: &str) -> u64 {
    let v = v.trim();
    match v.to_ascii_lowercase().as_str() {
        "off" | "0" | "" => 0,
        "always" | "on" | "1" => 1,
        s => {
            let n = s.strip_prefix("1/").unwrap_or(s);
            n.parse::<u64>().unwrap_or(0)
        }
    }
}

/// Override the sampling rate: 0 = off, 1 = every trace, N = one in N.
/// Takes precedence over `BERTHA_TRACE_SAMPLE`.
pub fn set_sample(denom: u64) {
    SAMPLE_DENOM.store(denom, Ordering::Relaxed);
}

/// The deterministic per-trace decision: both endpoints compute this
/// from the trace id alone and agree. (The sampled flag on the wire is
/// still authoritative for received contexts — a peer with a different
/// configured rate must be honored.)
pub fn sample_decision(trace_id: u128) -> bool {
    match sample_denom() {
        0 => false,
        1 => true,
        n => fnv64(&trace_id.to_le_bytes()) % n == 0,
    }
}

/// Bounded nonce → context map binding a negotiated connection (keyed by
/// its `ServerPicks` nonce) to its trace context, so chunnel `picked`
/// hooks — which see only the pick and the nonce — can recover the
/// context the handshake established. Oldest bindings are evicted past
/// [`NONCE_CAP`]; a connection looks its nonce up immediately after the
/// handshake, so eviction only bites pathological churn.
static NONCE_BINDINGS: Mutex<VecDeque<(u64, TraceContext)>> = Mutex::new(VecDeque::new());

/// Capacity of the nonce-binding map.
pub const NONCE_CAP: usize = 256;

/// Bind a handshake nonce to the trace context of the negotiation that
/// produced it.
pub fn bind_nonce(nonce: &[u8], ctx: TraceContext) {
    note_sampled(ctx);
    let key = fnv64(nonce);
    let mut map = NONCE_BINDINGS.lock();
    if let Some(slot) = map.iter_mut().find(|(k, _)| *k == key) {
        slot.1 = ctx;
        return;
    }
    if map.len() >= NONCE_CAP {
        map.pop_front();
    }
    map.push_back((key, ctx));
}

/// The most recently bound *sampled* trace context, feeding profiler
/// exemplars: when a per-layer latency histogram observes a new maximum,
/// the exporter attaches this context's trace id so the outlier links to
/// a flight-recorder dump. "Most recent" is deliberately loose — an
/// exemplar names *a* trace that was active around the outlier, not a
/// causal attribution (see DESIGN.md §9, "Per-layer profiling").
static LAST_SAMPLED: Mutex<Option<TraceContext>> = Mutex::new(None);

/// The most recently bound sampled trace context, if any.
pub fn last_sampled() -> Option<TraceContext> {
    *LAST_SAMPLED.lock()
}

/// Record `ctx` as the most recent sampled context (no-op if unsampled).
pub fn note_sampled(ctx: TraceContext) {
    if ctx.sampled {
        *LAST_SAMPLED.lock() = Some(ctx);
    }
}

/// Look up the trace context bound to a handshake nonce, if any.
pub fn nonce_context(nonce: &[u8]) -> Option<TraceContext> {
    let key = fnv64(nonce);
    NONCE_BINDINGS
        .lock()
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, c)| *c)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sampling denominator is process-global; tests that set it must
    // not interleave with each other.
    static SAMPLE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn roundtrips_wire_encoding() {
        let ctx = TraceContext {
            trace_id: 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210,
            span_id: 0xdead_beef_cafe_f00d,
            sampled: true,
        };
        let enc = ctx.encode();
        assert_eq!(enc.len(), WIRE_LEN);
        assert_eq!(TraceContext::decode(&enc), Some(ctx));
        assert_eq!(TraceContext::decode(&enc[..WIRE_LEN - 1]), None);
    }

    #[test]
    fn child_shares_trace_id_with_fresh_span() {
        let _g = SAMPLE_LOCK.lock();
        set_sample(1);
        let root = TraceContext::new_root();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.sampled, root.sampled);
        assert_ne!(child.span_id, root.span_id);
        set_sample(0);
    }

    #[test]
    fn ids_are_distinct() {
        let a = TraceContext::new_root();
        let b = TraceContext::new_root();
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.span_id, b.span_id);
    }

    #[test]
    fn parses_sample_rates() {
        assert_eq!(parse_sample("off"), 0);
        assert_eq!(parse_sample("0"), 0);
        assert_eq!(parse_sample(""), 0);
        assert_eq!(parse_sample("always"), 1);
        assert_eq!(parse_sample("1"), 1);
        assert_eq!(parse_sample("1/64"), 64);
        assert_eq!(parse_sample("64"), 64);
        assert_eq!(parse_sample("nonsense"), 0);
    }

    #[test]
    fn sampler_is_deterministic_per_trace() {
        let _g = SAMPLE_LOCK.lock();
        set_sample(4);
        let id = 0xabcdu128;
        let first = sample_decision(id);
        for _ in 0..10 {
            assert_eq!(sample_decision(id), first);
        }
        // At 1/N some ids sample and some do not.
        let any_on = (0..256u128).any(sample_decision);
        let any_off = (0..256u128).any(|i| !sample_decision(i));
        assert!(any_on && any_off);
        set_sample(0);
    }

    #[test]
    fn nonce_bindings_roundtrip_and_evict() {
        let _g = SAMPLE_LOCK.lock();
        set_sample(1);
        let ctx = TraceContext::new_root();
        bind_nonce(b"test-nonce-bind", ctx);
        assert_eq!(nonce_context(b"test-nonce-bind"), Some(ctx));
        assert_eq!(nonce_context(b"never-bound"), None);
        // Rebinding the same nonce overwrites in place.
        let ctx2 = TraceContext::new_root();
        bind_nonce(b"test-nonce-bind", ctx2);
        assert_eq!(nonce_context(b"test-nonce-bind"), Some(ctx2));
        // Flooding evicts the oldest entries.
        for i in 0..(NONCE_CAP + 8) {
            bind_nonce(format!("flood-{i}").as_bytes(), ctx);
        }
        assert_eq!(nonce_context(b"test-nonce-bind"), None);
        set_sample(0);
    }

    #[test]
    fn binding_a_sampled_nonce_updates_last_sampled() {
        let _g = SAMPLE_LOCK.lock();
        set_sample(1);
        let ctx = TraceContext::new_root();
        assert!(ctx.sampled);
        bind_nonce(b"last-sampled-probe", ctx);
        assert_eq!(last_sampled(), Some(ctx));
        // Unsampled bindings do not clobber the slot.
        let unsampled = TraceContext {
            sampled: false,
            ..TraceContext::new_root()
        };
        bind_nonce(b"last-sampled-probe-2", unsampled);
        assert_eq!(last_sampled(), Some(ctx));
        set_sample(0);
    }

    #[test]
    fn trace_hex_is_32_digits() {
        assert_eq!(trace_hex(0xff), format!("{:032x}", 0xff));
        assert_eq!(trace_hex(0xff).len(), 32);
    }
}

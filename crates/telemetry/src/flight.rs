//! The flight recorder: an always-on, fixed-size ring of the most recent
//! rendered events, dumped to disk on failure.
//!
//! Even with no sink installed, `Info`-and-above events are rendered and
//! pushed into this ring (see `trace::emit`). The ring holds the last
//! [`capacity`] JSON lines per process (default 512, override with
//! `BERTHA_FLIGHT_CAPACITY`); pushing is one short `parking_lot` mutex
//! hold and one `VecDeque` rotate — cheap enough for control-path events,
//! and the per-frame data path stays at `Debug` level and never gets here
//! without a sink.
//!
//! [`dump`] writes the ring as JSON-lines to
//! `bertha-flight-<pid>-<seq>.jsonl` in `BERTHA_FLIGHT_DIR` (or the
//! system temp dir), with a header line first carrying the trigger and —
//! when the failure is tied to a trace — the triggering trace id, so a
//! postmortem starts from the right trace. Failure sites that dump:
//! handshake exhaustion, renegotiation round failure, epoch swaps,
//! dead-peer detection, and fallback-server activation; the discovery
//! agent also serves the live ring over its `DumpFlightRecorder` RPC.
//! Dumps are capped at [`MAX_DUMPS`] per process so a crash loop cannot
//! fill the disk.

use crate::metrics;
use crate::tracectx::trace_hex;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// Default ring capacity (events), override with `BERTHA_FLIGHT_CAPACITY`.
pub const DEFAULT_CAPACITY: usize = 512;

/// Maximum number of dump files one process will write.
pub const MAX_DUMPS: u64 = 32;

static RING: Mutex<VecDeque<String>> = Mutex::new(VecDeque::new());
static DUMPS: Mutex<Vec<PathBuf>> = Mutex::new(Vec::new());
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The configured ring capacity.
pub fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("BERTHA_FLIGHT_CAPACITY")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAPACITY)
    })
}

/// Push one rendered JSON event line into the ring, evicting the oldest
/// past capacity. Called from `trace::emit` for `Info`-and-above events.
pub fn record_line(line: &str) {
    let cap = capacity();
    let mut ring = RING.lock();
    if ring.len() >= cap {
        ring.pop_front();
    }
    ring.push_back(line.to_owned());
}

/// The ring's current contents, oldest first.
pub fn snapshot_lines() -> Vec<String> {
    RING.lock().iter().cloned().collect()
}

/// Number of events currently retained.
pub fn len() -> usize {
    RING.lock().len()
}

/// True when the ring holds no events.
pub fn is_empty() -> bool {
    RING.lock().is_empty()
}

/// Drop every retained event (tests).
pub fn clear() {
    RING.lock().clear();
}

/// Paths of every dump this process has written, oldest first.
pub fn dump_paths() -> Vec<PathBuf> {
    DUMPS.lock().clone()
}

fn dump_dir() -> PathBuf {
    std::env::var_os("BERTHA_FLIGHT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

/// Dump the ring to a JSON-lines file: one header line naming the
/// trigger (and the triggering trace id, when there is one), then every
/// retained event, oldest first. Returns the path, or `None` if the
/// per-process dump cap is hit or the write fails — a failed postmortem
/// dump must never take the process down with it.
pub fn dump(trigger: &str, trace_id: Option<u128>) -> Option<PathBuf> {
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    if seq >= MAX_DUMPS {
        return None;
    }
    let lines = snapshot_lines();
    // When the failure is tied to a trace, the dump carries the buffered
    // span records for that trace id (non-draining read: the exporter's
    // copy is untouched), so the artifact includes its own waterfall.
    let span_lines: Vec<String> = trace_id
        .map(|id| {
            crate::span::records_for_trace(id)
                .iter()
                .map(|r| r.to_json_line())
                .collect()
        })
        .unwrap_or_default();
    let path = dump_dir().join(format!(
        "bertha-flight-{}-{}.jsonl",
        std::process::id(),
        seq
    ));
    let mut header = String::with_capacity(128);
    header.push_str("{\"flight_dump\":{\"trigger\":");
    crate::json::push_str(&mut header, trigger);
    header.push_str(",\"trace_id\":");
    match trace_id {
        Some(id) => crate::json::push_str(&mut header, &trace_hex(id)),
        None => header.push_str("null"),
    }
    header.push_str(",\"ts_us\":");
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    header.push_str(&ts.to_string());
    header.push_str(",\"pid\":");
    header.push_str(&std::process::id().to_string());
    header.push_str(",\"events\":");
    header.push_str(&lines.len().to_string());
    header.push_str(",\"spans\":");
    header.push_str(&span_lines.len().to_string());
    header.push_str("}}");

    let write = || -> std::io::Result<()> {
        let file = std::fs::File::create(&path)?;
        let mut w = std::io::BufWriter::new(file);
        writeln!(w, "{header}")?;
        for line in &lines {
            writeln!(w, "{line}")?;
        }
        for line in &span_lines {
            writeln!(w, "{line}")?;
        }
        w.flush()
    };
    if write().is_err() {
        return None;
    }
    metrics::counter("flight.dumps").incr();
    DUMPS.lock().push(path.clone());
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_and_evicts() {
        // The ring is process-global and other tests feed it; identify
        // our own lines by a unique marker.
        let marker = "flight-test-retain";
        for i in 0..8 {
            record_line(&format!("{{\"m\":\"{marker}-{i}\"}}"));
        }
        let ours: Vec<_> = snapshot_lines()
            .into_iter()
            .filter(|l| l.contains(marker))
            .collect();
        assert_eq!(ours.len(), 8);
        assert!(ours[0].contains(&format!("{marker}-0")));
        assert!(ours[7].contains(&format!("{marker}-7")));
        assert!(len() <= capacity());
    }

    #[test]
    fn dump_writes_header_then_events() {
        let marker = "flight-test-dump";
        record_line(&format!("{{\"m\":\"{marker}\"}}"));
        let path = dump("unit.test", Some(0xabc)).expect("dump written");
        let contents = std::fs::read_to_string(&path).unwrap();
        let mut lines = contents.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"trigger\":\"unit.test\""), "{header}");
        assert!(
            header.contains(&format!("\"trace_id\":\"{:032x}\"", 0xabc)),
            "{header}"
        );
        assert!(contents.contains(marker), "{contents}");
        assert!(dump_paths().contains(&path));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dump_carries_span_records_for_triggering_trace() {
        // Hold the span-buffer test lock: a concurrent drain() elsewhere
        // would steal the record between push and dump.
        let _g = crate::span::TEST_LOCK.lock();
        let trace_id = 0xf11e_u128;
        let ctx = crate::tracectx::TraceContext {
            trace_id,
            span_id: 77,
            sampled: true,
        };
        crate::span::record(
            "unit.flightspan",
            "dump-host",
            &ctx,
            0,
            std::time::Instant::now(),
            crate::span::SpanStatus::Ok,
            &[],
        );
        let path = dump("unit.span_link", Some(trace_id)).expect("dump written");
        let contents = std::fs::read_to_string(&path).unwrap();
        let header = contents.lines().next().unwrap();
        assert!(header.contains("\"spans\":1"), "{header}");
        assert!(
            contents.contains("\"op\":\"unit.flightspan\""),
            "span record missing from dump: {contents}"
        );
        // The read is non-draining: the exporter still sees the record.
        assert_eq!(crate::span::records_for_trace(trace_id).len(), 1);
        crate::span::clear();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dump_without_trace_id_has_null() {
        let path = dump("unit.no_trace", None).expect("dump written");
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents
                .lines()
                .next()
                .unwrap()
                .contains("\"trace_id\":null"),
            "{contents}"
        );
        std::fs::remove_file(&path).ok();
    }
}

//! Span records and the per-process span buffer — the export half of
//! distributed trace assembly (DESIGN.md §9 "Trace assembly and tail
//! sampling").
//!
//! Events already carry `trace_id`/`span_id`/`parent_span_id` fields,
//! but events are flat: reconstructing "where did this request spend
//! its time, on which host?" from interleaved JSON lines across
//! processes is archaeology. A [`SpanRecord`] is the structured form of
//! one completed span — ids, an `<subsystem>.<op>` name, a host tag,
//! monotonic-anchored wall-clock start/end, a status, and a few string
//! attrs — compact enough to buffer per-process and ship to the local
//! `bertha-agentd`, which assembles records by trace id into trace
//! trees and applies tail-based retention.
//!
//! The buffer is a bounded lock-free Treiber stack: the hot path
//! ([`record`], called only for *sampled* traces) is one allocation and
//! one CAS; when full, new records are dropped and counted rather than
//! blocking. Draining ([`drain`], the exporter) and non-draining reads
//! ([`records_for_trace`], the flight-recorder cross-link) are cold
//! paths serialized by a mutex.
//!
//! Wall-clock anchoring: span timestamps must be comparable *across
//! hosts*, so they are wall-clock microseconds — but derived from one
//! `(Instant, SystemTime)` pair captured at first use, so intra-process
//! durations stay monotonic even if the wall clock steps.

use crate::tracectx::TraceContext;
use crate::json;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// First byte of every encoded [`SpanRecord`]. Registered as 0xB5 on the
/// `span-record` channel in `bertha::negotiate::wire` (this crate sits
/// below `bertha`, so the value is written in decimal here and the
/// registry cross-asserts equality at compile time).
pub const SPAN_MAGIC: u8 = 181;
/// Codec version byte; decoders reject anything else. Registered as 0x01
/// on the `span-record` channel in `bertha::negotiate::wire`.
pub const SPAN_VERSION: u8 = 1;
/// Fixed prefix before the variable-length tail: magic, version, trace
/// id, span id, parent span id, start, end, status, attr count, op
/// length.
const FIXED_LEN: usize = 2 + 16 + 8 + 8 + 8 + 8 + 1 + 1 + 2;

/// How a span ended. The failure variants mirror the flight-recorder
/// trigger taxonomy, which is what the collector's tail sampler keys
/// retention off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStatus {
    /// Completed normally.
    Ok,
    /// A client handshake exhausted its retries.
    ClientTimeout,
    /// A renegotiation round failed.
    RoundFailed,
    /// An epoch swap (not an error, but always worth keeping: the
    /// connection changed shape mid-flight).
    Swap,
    /// Any other failure.
    Failed,
}

impl SpanStatus {
    /// Stable wire byte.
    pub fn as_u8(self) -> u8 {
        match self {
            SpanStatus::Ok => 0,
            SpanStatus::ClientTimeout => 1,
            SpanStatus::RoundFailed => 2,
            SpanStatus::Swap => 3,
            SpanStatus::Failed => 4,
        }
    }

    /// Decode the wire byte; `None` for unknown values.
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0 => SpanStatus::Ok,
            1 => SpanStatus::ClientTimeout,
            2 => SpanStatus::RoundFailed,
            3 => SpanStatus::Swap,
            4 => SpanStatus::Failed,
            _ => return None,
        })
    }

    /// Human/JSON spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::ClientTimeout => "client_timeout",
            SpanStatus::RoundFailed => "round_failed",
            SpanStatus::Swap => "swap",
            SpanStatus::Failed => "failed",
        }
    }

    /// Does this status mark the whole trace as failed for tail-based
    /// retention? (`Swap` counts: a mid-connection stack swap is always
    /// worth a look.)
    pub fn is_failure(self) -> bool {
        !matches!(self, SpanStatus::Ok)
    }
}

/// One completed span, ready for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// 128-bit id shared by every span in the trace.
    pub trace_id: u128,
    /// This span's 64-bit id.
    pub span_id: u64,
    /// Parent span id; 0 for a root span.
    pub parent_span_id: u64,
    /// `<subsystem>.<op>` name (`negotiate.client`, `reneg.swap`, ...);
    /// the spellings live in the DESIGN.md §9 span table and are
    /// cross-checked by `bertha-check`.
    pub op: String,
    /// Which process/endpooint produced this span (the negotiation
    /// `opts.name` where one exists, else the process-wide host tag).
    pub host: String,
    /// Wall-clock start, microseconds since the Unix epoch
    /// (monotonic-anchored; see module docs).
    pub start_us: u64,
    /// Wall-clock end, same basis.
    pub end_us: u64,
    /// Outcome.
    pub status: SpanStatus,
    /// Small set of key/value attributes (layer name, epoch, ...).
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration in microseconds (0 if the clock stepped backwards).
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Encode to the length-delimited binary form `decode` accepts.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FIXED_LEN + self.op.len() + self.host.len() + 16);
        out.push(SPAN_MAGIC);
        out.push(SPAN_VERSION);
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&self.span_id.to_le_bytes());
        out.extend_from_slice(&self.parent_span_id.to_le_bytes());
        out.extend_from_slice(&self.start_us.to_le_bytes());
        out.extend_from_slice(&self.end_us.to_le_bytes());
        out.push(self.status.as_u8());
        out.push(self.attrs.len().min(u8::MAX as usize) as u8);
        push_str(&mut out, &self.op);
        push_str(&mut out, &self.host);
        for (k, v) in self.attrs.iter().take(u8::MAX as usize) {
            push_str(&mut out, k);
            push_str(&mut out, v);
        }
        out
    }

    /// Decode one record. Rejects (returns `None` on) a wrong magic or
    /// version byte, an unknown status, any truncation, and non-UTF-8
    /// strings; trailing bytes after a complete record are ignored.
    /// Never panics, whatever the bytes.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < FIXED_LEN - 2 || buf[0] != SPAN_MAGIC || buf[1] != SPAN_VERSION {
            return None;
        }
        let trace_id = u128::from_le_bytes(buf.get(2..18)?.try_into().ok()?);
        let span_id = u64::from_le_bytes(buf.get(18..26)?.try_into().ok()?);
        let parent_span_id = u64::from_le_bytes(buf.get(26..34)?.try_into().ok()?);
        let start_us = u64::from_le_bytes(buf.get(34..42)?.try_into().ok()?);
        let end_us = u64::from_le_bytes(buf.get(42..50)?.try_into().ok()?);
        let status = SpanStatus::from_u8(*buf.get(50)?)?;
        let n_attrs = *buf.get(51)? as usize;
        let mut pos = 52;
        let op = read_str(buf, &mut pos)?;
        let host = read_str(buf, &mut pos)?;
        let mut attrs = Vec::with_capacity(n_attrs.min(16));
        for _ in 0..n_attrs {
            let k = read_str(buf, &mut pos)?;
            let v = read_str(buf, &mut pos)?;
            attrs.push((k, v));
        }
        Some(SpanRecord {
            trace_id,
            span_id,
            parent_span_id,
            op,
            host,
            start_us,
            end_us,
            status,
            attrs,
        })
    }

    /// Render as one JSON line (the form flight dumps embed).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"span\":{\"trace_id\":");
        json::push_str(&mut out, &crate::tracectx::trace_hex(self.trace_id));
        out.push_str(",\"span_id\":");
        out.push_str(&self.span_id.to_string());
        out.push_str(",\"parent_span_id\":");
        out.push_str(&self.parent_span_id.to_string());
        out.push_str(",\"op\":");
        json::push_str(&mut out, &self.op);
        out.push_str(",\"host\":");
        json::push_str(&mut out, &self.host);
        out.push_str(",\"start_us\":");
        out.push_str(&self.start_us.to_string());
        out.push_str(",\"end_us\":");
        out.push_str(&self.end_us.to_string());
        out.push_str(",\"status\":");
        json::push_str(&mut out, self.status.as_str());
        out.push_str(",\"attrs\":{");
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, k);
            json::push_str(&mut out, v);
        }
        out.push_str("}}}");
        out
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

fn read_str(buf: &[u8], pos: &mut usize) -> Option<String> {
    let len = u16::from_le_bytes(buf.get(*pos..*pos + 2)?.try_into().ok()?) as usize;
    *pos += 2;
    let s = std::str::from_utf8(buf.get(*pos..*pos + len)?).ok()?;
    *pos += len;
    Some(s.to_string())
}

// ---------------------------------------------------------------------
// The bounded lock-free buffer.

struct Node {
    rec: SpanRecord,
    next: *mut Node,
}

static HEAD: AtomicPtr<Node> = AtomicPtr::new(std::ptr::null_mut());
static LEN: AtomicUsize = AtomicUsize::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Serializes the cold paths (drain, snapshot walks, clear) against
/// each other, so a walker never dereferences a node a drainer freed.
/// Pushes never take it.
static SWEEP: Mutex<()> = Mutex::new(());

fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("BERTHA_SPAN_BUFFER")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(4096)
    })
}

/// Push one record into the process buffer. Lock-free; when the buffer
/// is at capacity (`BERTHA_SPAN_BUFFER`, default 4096) the record is
/// dropped and counted instead.
pub fn push(rec: SpanRecord) {
    if LEN.fetch_add(1, Ordering::AcqRel) >= capacity() {
        LEN.fetch_sub(1, Ordering::AcqRel);
        DROPPED.fetch_add(1, Ordering::Relaxed);
        crate::counter("trace.spans_dropped").incr();
        return;
    }
    let node = Box::into_raw(Box::new(Node {
        rec,
        next: std::ptr::null_mut(),
    }));
    loop {
        let head = HEAD.load(Ordering::Acquire);
        // Safety: `node` is ours until the CAS publishes it.
        unsafe { (*node).next = head };
        if HEAD
            .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
    }
}

/// Record a completed span for a *sampled* trace: unsampled contexts
/// return immediately. The record's span id is `ctx.span_id` (matching
/// the ids already emitted in event fields, so events and spans
/// correlate); `parent_span_id` is explicit because the parent may live
/// on another host. `start` is when the operation began; the record's
/// wall-clock window is derived from the monotonic anchor.
pub fn record(
    op: &str,
    host: &str,
    ctx: &TraceContext,
    parent_span_id: u64,
    start: Instant,
    status: SpanStatus,
    attrs: &[(&str, String)],
) {
    if !ctx.sampled {
        return;
    }
    let end_us = now_wall_us();
    let start_us = end_us.saturating_sub(start.elapsed().as_micros() as u64);
    push(SpanRecord {
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent_span_id,
        op: op.to_string(),
        host: host.to_string(),
        start_us,
        end_us,
        status,
        attrs: attrs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    });
}

/// Like [`record`], with the process-wide [`host_tag`].
pub fn record_local(
    op: &str,
    ctx: &TraceContext,
    parent_span_id: u64,
    start: Instant,
    status: SpanStatus,
    attrs: &[(&str, String)],
) {
    record(op, &host_tag(), ctx, parent_span_id, start, status, attrs);
}

/// Drain the buffer: every buffered record, oldest first. This is the
/// exporter's read — after it, the buffer is empty (modulo concurrent
/// pushes, which are kept).
pub fn drain() -> Vec<SpanRecord> {
    let _g = SWEEP.lock();
    let mut p = HEAD.swap(std::ptr::null_mut(), Ordering::AcqRel);
    let mut out = Vec::new();
    while !p.is_null() {
        // Safety: we own the detached chain; SWEEP excludes other
        // walkers and drainers.
        let node = unsafe { Box::from_raw(p) };
        p = node.next;
        out.push(node.rec);
        LEN.fetch_sub(1, Ordering::AcqRel);
    }
    out.reverse();
    out
}

/// Non-draining read of every buffered record for one trace, oldest
/// first — the flight-recorder cross-link: a failure dump includes the
/// triggering trace's spans without consuming the exporter's copy.
pub fn records_for_trace(trace_id: u128) -> Vec<SpanRecord> {
    let _g = SWEEP.lock();
    let mut p = HEAD.load(Ordering::Acquire);
    let mut out = Vec::new();
    while !p.is_null() {
        // Safety: nodes are only freed by drain/clear, which hold SWEEP.
        unsafe {
            if (*p).rec.trace_id == trace_id {
                out.push((*p).rec.clone());
            }
            p = (*p).next;
        }
    }
    out.reverse();
    out
}

/// Number of buffered records.
pub fn len() -> usize {
    LEN.load(Ordering::Acquire)
}

/// Records dropped because the buffer was full.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Empty the buffer (tests).
pub fn clear() {
    let _ = drain();
}

// ---------------------------------------------------------------------
// Host tag and the monotonic wall-clock anchor.

static HOST: Mutex<Option<String>> = Mutex::new(None);

/// Set the process-wide host tag stamped on spans recorded without an
/// explicit one.
pub fn set_host_tag(name: &str) {
    *HOST.lock() = Some(name.to_string());
}

/// The process-wide host tag: `set_host_tag` value, else
/// `BERTHA_SPAN_HOST`, else `pid-<pid>`. The default is computed once
/// and cached, so callers on timed paths don't repeat the env lookup.
pub fn host_tag() -> String {
    let mut h = HOST.lock();
    if let Some(h) = h.as_ref() {
        return h.clone();
    }
    let def = std::env::var("BERTHA_SPAN_HOST")
        .unwrap_or_else(|_| format!("pid-{}", std::process::id()));
    *h = Some(def.clone());
    def
}

fn anchor() -> (Instant, u64) {
    static ANCHOR: OnceLock<(Instant, u64)> = OnceLock::new();
    *ANCHOR.get_or_init(|| {
        let wall = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        (Instant::now(), wall)
    })
}

/// Wall-clock "now" in microseconds since the Unix epoch, derived from
/// the process's monotonic anchor: comparable across hosts (to clock
/// sync precision), monotonic within the process.
pub fn now_wall_us() -> u64 {
    let (i0, w0) = anchor();
    w0.saturating_add(i0.elapsed().as_micros() as u64)
}

// ---------------------------------------------------------------------
// Trace-tree helpers shared by the collector and `bertha-trace`.

/// The root span of an assembled trace: `parent_span_id == 0`, or (for
/// a trace whose true root was lost) the span no other span parents.
pub fn root_of(spans: &[SpanRecord]) -> Option<&SpanRecord> {
    if let Some(r) = spans.iter().find(|s| s.parent_span_id == 0) {
        return Some(r);
    }
    spans
        .iter()
        .find(|s| !spans.iter().any(|p| p.span_id == s.parent_span_id))
        .or_else(|| spans.first())
}

/// The critical path of an assembled trace: starting at the root,
/// repeatedly descend into the child with the latest end time (the one
/// still running when its siblings were done — the chain that
/// determined when the trace finished). Returns span ids, root first.
pub fn critical_path(spans: &[SpanRecord]) -> Vec<u64> {
    let Some(root) = root_of(spans) else {
        return Vec::new();
    };
    let mut path = vec![root.span_id];
    let mut cur = root.span_id;
    loop {
        let next = spans
            .iter()
            .filter(|s| s.parent_span_id == cur && s.span_id != cur)
            .max_by_key(|s| s.end_us);
        match next {
            Some(s) if !path.contains(&s.span_id) => {
                path.push(s.span_id);
                cur = s.span_id;
            }
            _ => return path,
        }
    }
}

/// Serializes tests (across the crate's modules) that read or drain the
/// process-global span buffer.
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    // Global-buffer tests share the process buffer; serialize them.
    // Tests in *other* modules may still push concurrently (they don't
    // hold this lock), so assertions filter by test-unique trace ids
    // rather than counting the whole buffer.
    use super::TEST_LOCK as SPAN_TEST_LOCK;

    fn rec(trace: u128, span: u64, parent: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: span,
            parent_span_id: parent,
            op: "test.op".into(),
            host: "h".into(),
            start_us: 100,
            end_us: 250,
            status: SpanStatus::Ok,
            attrs: vec![("k".into(), "v".into())],
        }
    }

    #[test]
    fn codec_round_trips() {
        let r = SpanRecord {
            trace_id: 0xdead_beef_cafe,
            span_id: 7,
            parent_span_id: 3,
            op: "negotiate.client".into(),
            host: "cli-α".into(),
            start_us: 1_700_000_000_000_000,
            end_us: 1_700_000_000_001_234,
            status: SpanStatus::RoundFailed,
            attrs: vec![("epoch".into(), "1".into()), ("layer".into(), "x".into())],
        };
        let enc = r.encode();
        assert_eq!(SpanRecord::decode(&enc), Some(r.clone()));
        // Trailing bytes are ignored.
        let mut long = enc.clone();
        long.extend_from_slice(b"junk");
        assert_eq!(SpanRecord::decode(&long), Some(r));
    }

    #[test]
    fn codec_rejects_truncation_and_garbage() {
        let enc = rec(1, 2, 0).encode();
        for cut in 0..enc.len() {
            assert_eq!(SpanRecord::decode(&enc[..cut]), None, "cut at {cut}");
        }
        let mut bad_magic = enc.clone();
        bad_magic[0] = 0x00;
        assert!(SpanRecord::decode(&bad_magic).is_none());
        let mut bad_version = enc.clone();
        bad_version[1] = 0x7f;
        assert!(SpanRecord::decode(&bad_version).is_none());
        let mut bad_status = enc.clone();
        bad_status[50] = 0xff;
        assert!(SpanRecord::decode(&bad_status).is_none());
        assert!(SpanRecord::decode(&[]).is_none());
        assert!(SpanRecord::decode(&[0xB5]).is_none());
    }

    #[test]
    fn buffer_push_drain_preserves_order_and_bounds() {
        let _g = SPAN_TEST_LOCK.lock();
        let trace = 0x7e57_0001_u128;
        for i in 0..10 {
            push(rec(trace, i as u64 + 1, 0));
        }
        let got: Vec<SpanRecord> = drain()
            .into_iter()
            .filter(|r| r.trace_id == trace)
            .collect();
        assert_eq!(got.len(), 10);
        assert!(records_for_trace(trace).is_empty(), "drain must consume");
        let ids: Vec<u64> = got.iter().map(|r| r.span_id).collect();
        assert_eq!(ids, (1..=10).collect::<Vec<_>>(), "oldest first");
    }

    #[test]
    fn records_for_trace_does_not_drain() {
        let _g = SPAN_TEST_LOCK.lock();
        let (ta, tb) = (0x7e57_0002_u128, 0x7e57_0003_u128);
        push(rec(ta, 1, 0));
        push(rec(tb, 2, 0));
        push(rec(ta, 3, 1));
        let a = records_for_trace(ta);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].span_id, 1);
        assert_eq!(a[1].span_id, 3);
        // Non-draining: a second read sees the same records.
        assert_eq!(records_for_trace(ta).len(), 2, "snapshot must not consume");
        assert_eq!(records_for_trace(tb).len(), 1);
        clear();
    }

    #[test]
    fn record_skips_unsampled_contexts() {
        let _g = SPAN_TEST_LOCK.lock();
        let trace = 0x7e57_0004_u128;
        let unsampled = TraceContext {
            trace_id: trace,
            span_id: 1,
            sampled: false,
        };
        record("a.b", "h", &unsampled, 0, Instant::now(), SpanStatus::Ok, &[]);
        assert!(records_for_trace(trace).is_empty());
        let sampled = TraceContext {
            trace_id: trace,
            span_id: 1,
            sampled: true,
        };
        record("a.b", "h", &sampled, 0, Instant::now(), SpanStatus::Ok, &[]);
        let got = records_for_trace(trace);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].span_id, 1);
        assert_eq!(got[0].op, "a.b");
        assert!(got[0].end_us >= got[0].start_us);
        clear();
    }

    #[test]
    fn critical_path_descends_latest_ending_children() {
        // root(1) -> a(2, ends 300), b(3, ends 500) -> b-child(4, ends 450)
        let mut spans = vec![rec(1, 1, 0), rec(1, 2, 1), rec(1, 3, 1), rec(1, 4, 3)];
        spans[1].end_us = 300;
        spans[2].end_us = 500;
        spans[3].end_us = 450;
        assert_eq!(critical_path(&spans), vec![1, 3, 4]);
        assert_eq!(root_of(&spans).map(|r| r.span_id), Some(1));
    }

    #[test]
    fn critical_path_survives_cycles_and_missing_roots() {
        // No parent==0 root; 5 and 6 parent each other (corrupt input).
        let mut a = rec(1, 5, 6);
        let mut b = rec(1, 6, 5);
        a.end_us = 10;
        b.end_us = 20;
        let spans = vec![a, b];
        let path = critical_path(&spans);
        assert!(!path.is_empty(), "must terminate");
    }

    #[test]
    fn json_line_shape() {
        let line = rec(0xab, 2, 1).to_json_line();
        assert!(line.starts_with("{\"span\":{\"trace_id\":\""));
        assert!(line.contains("\"op\":\"test.op\""));
        assert!(line.contains("\"status\":\"ok\""));
        assert!(line.contains("\"attrs\":{\"k\":\"v\"}"));
        assert!(line.ends_with("}}}"));
    }

    #[test]
    fn host_tag_default_and_override() {
        let _g = SPAN_TEST_LOCK.lock();
        let saved = HOST.lock().clone();
        *HOST.lock() = None;
        assert!(host_tag().starts_with("pid-") || std::env::var("BERTHA_SPAN_HOST").is_ok());
        set_host_tag("host-a");
        assert_eq!(host_tag(), "host-a");
        *HOST.lock() = saved;
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let a = now_wall_us();
        let b = now_wall_us();
        assert!(b >= a);
        assert!(a > 1_000_000_000_000_000, "anchored to the Unix epoch");
    }
}

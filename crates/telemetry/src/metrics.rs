//! Counters, gauges, and log-bucketed histograms behind a process-global
//! registry.
//!
//! The registry maps names to `Arc`-shared metric handles. Name lookup
//! takes a `parking_lot` read lock and happens once, at construction time
//! of whatever owns the handle; after that, every operation is a single
//! relaxed atomic RMW. Nothing on the data path ever touches the registry
//! maps.
//!
//! Naming convention: `subsystem.metric`, lowercase, dot-separated —
//! `switchable.frames_sent`, `reneg.epoch_swaps`, `discovery.lease_expiries`.
//! The full table lives in DESIGN.md §"Observability".

use crate::json;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A monotonically increasing counter. All operations are relaxed atomics.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A new counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depths, in-flight counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A new gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `b` holds values whose highest set
/// bit is `b-1` (i.e. `2^(b-1) <= v < 2^b`); bucket 0 holds only zero.
const BUCKETS: usize = 65;

/// A fixed log2-bucketed histogram. Recording is two relaxed atomic adds
/// plus one into the matching bucket; no locks, no allocation, bounded
/// (and small) memory. Quantiles are approximate: a quantile resolves to
/// the upper edge of the bucket that contains it, so the reported value is
/// within 2x of the true one — plenty for the latency distributions it
/// records (durations are recorded in microseconds).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A new, empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Upper edge (inclusive) of bucket `b`.
    fn bucket_edge(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration, in microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Freeze the current contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(b, c)| {
                let c = c.load(Ordering::Relaxed);
                (c > 0).then_some((Self::bucket_edge(b), c))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }

    /// Approximate quantile (`0.0..=1.0`): upper edge of the containing
    /// bucket. Zero if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time copy of a [`Histogram`]: total count and sum, plus the
/// non-empty buckets as `(upper_edge, count)` pairs in ascending order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Non-empty buckets: `(inclusive upper edge, observation count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Approximate quantile (`0.0..=1.0`): upper edge of the containing
    /// bucket. Zero if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0;
        for &(edge, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return edge;
            }
        }
        self.buckets.last().map(|&(e, _)| e).unwrap_or(0)
    }

    /// The buckets as cumulative `(inclusive upper edge, count of
    /// observations <= edge)` pairs — exactly OpenMetrics `le` semantics,
    /// since the stored edges are inclusive. The final cumulative count
    /// equals [`count`](Self::count).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut seen = 0;
        self.buckets
            .iter()
            .map(|&(edge, c)| {
                seen += c;
                (edge, seen)
            })
            .collect()
    }

    /// Mean of observations (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn render_json(&self, out: &mut String) {
        out.push_str("{\"count\":");
        out.push_str(&self.count.to_string());
        out.push_str(",\"sum\":");
        out.push_str(&self.sum.to_string());
        out.push_str(",\"mean\":");
        json::push_f64(out, self.mean());
        out.push_str(",\"p50\":");
        out.push_str(&self.quantile(0.5).to_string());
        out.push_str(",\"p99\":");
        out.push_str(&self.quantile(0.99).to_string());
        out.push_str(",\"buckets\":[");
        for (i, (edge, c)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            out.push_str(&edge.to_string());
            out.push(',');
            out.push_str(&c.to_string());
            out.push(']');
        }
        out.push_str("]}");
    }
}

/// A per-object counter that also rolls up into a global-registry counter.
/// `get` reads the *local* value, so tests and introspection can assert on
/// one object's activity without cross-talk from other connections in the
/// same process; the global aggregate feeds snapshots.
#[derive(Debug)]
pub struct MirroredCounter {
    local: Counter,
    global: Arc<Counter>,
}

impl MirroredCounter {
    /// A new counter mirroring into the global counter named `global_name`.
    pub fn new(global_name: &str) -> Self {
        MirroredCounter {
            local: Counter::new(),
            global: counter(global_name),
        }
    }

    /// Add one (locally and globally).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n` (locally and globally).
    #[inline]
    pub fn add(&self, n: u64) {
        self.local.add(n);
        self.global.add(n);
    }

    /// This object's count (not the global aggregate).
    #[inline]
    pub fn get(&self) -> u64 {
        self.local.get()
    }
}

/// A registry of named metrics. Handing out a handle takes a read lock on
/// the name map (write lock only on first use of a name); using the handle
/// never touches the registry again.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// A new, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(self.counters.write().entry(name.to_owned()).or_default())
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(self.gauges.write().entry(name.to_owned()).or_default())
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(self.histograms.write().entry(name.to_owned()).or_default())
    }

    /// Freeze every metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`Registry`], renderable as JSON.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Render as a single JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, k);
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, k);
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, v)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, k);
            v.render_json(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// True if a counter, gauge, or histogram with this name is present.
    pub fn contains(&self, name: &str) -> bool {
        self.counters.contains_key(name)
            || self.gauges.contains_key(name)
            || self.histograms.contains_key(name)
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Get or create a counter in the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Get or create a gauge in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Get or create a histogram in the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        let snap = h.snapshot();
        // 0 -> edge 0; 1 -> edge 1; 2,3 -> edge 3; 4 -> edge 7;
        // 1000 -> edge 1023; u64::MAX -> edge u64::MAX.
        assert_eq!(
            snap.buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1), (u64::MAX, 1)]
        );
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile(0.5), 3);
    }

    #[test]
    fn histogram_bucket_edges_at_powers_of_two() {
        // The bucket rule: a value lands in the bucket whose inclusive
        // upper edge is the next `2^k - 1` at or above it. So `2^k - 1`
        // sits exactly on its edge while `2^k` spills into the next
        // bucket — the boundary is between them, never on the power.
        for k in 1..63u32 {
            let pow = 1u64 << k;
            let h = Histogram::new();
            h.record(pow - 1);
            h.record(pow);
            assert_eq!(
                h.snapshot().buckets,
                vec![(pow - 1, 1), (pow * 2 - 1, 1)],
                "boundary at 2^{k}"
            );
        }
        // Degenerate edges: zero has its own bucket, one is the first
        // power bucket, and the top bucket's edge saturates at u64::MAX.
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX - 1);
        h.record(u64::MAX);
        assert_eq!(h.snapshot().buckets, vec![(0, 1), (1, 1), (u64::MAX, 2)]);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().quantile(0.99), 0);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_total() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        let cum = snap.cumulative();
        assert_eq!(cum, vec![(0, 1), (1, 2), (3, 4), (7, 5), (1023, 6)]);
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        assert_eq!(cum.last().unwrap().1, snap.count);
        assert!(HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![],
        }
        .cumulative()
        .is_empty());
    }

    #[test]
    fn snapshot_json_includes_raw_buckets() {
        // Exporters and bench_compare reconstruct full distributions from
        // BENCH_*.json: the raw (edge, count) vector must survive the
        // summary-stats rendering, not just p50/p99.
        let r = Registry::new();
        let h = r.histogram("raw.buckets_us");
        h.record(1);
        h.record(1000);
        let js = r.snapshot().to_json();
        assert!(js.contains("\"buckets\":[[1,1],[1023,1]]"), "{js}");
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let r = Registry::new();
        let a = r.counter("x.y");
        let b = r.counter("x.y");
        a.incr();
        b.incr();
        assert_eq!(r.counter("x.y").get(), 2);
        assert_eq!(r.counter("other").get(), 0);
    }

    #[test]
    fn mirrored_counter_counts_locally_and_globally() {
        let before = counter("test.mirrored").get();
        let m = MirroredCounter::new("test.mirrored");
        m.add(3);
        assert_eq!(m.get(), 3);
        assert_eq!(counter("test.mirrored").get(), before + 3);
    }

    #[test]
    fn snapshot_renders_json() {
        let r = Registry::new();
        r.counter("a.b").add(2);
        r.gauge("g").set(-1);
        r.histogram("h").record(5);
        let js = r.snapshot().to_json();
        assert!(js.starts_with('{') && js.ends_with('}'), "{js}");
        assert!(js.contains("\"a.b\":2"), "{js}");
        assert!(js.contains("\"g\":-1"), "{js}");
        assert!(js.contains("\"count\":1"), "{js}");
        assert!(js.contains("\"p50\":7"), "{js}");
        assert!(r.snapshot().contains("a.b"));
        assert!(!r.snapshot().contains("missing"));
    }
}

//! Minimal hand-rolled JSON rendering.
//!
//! The workspace carries no `serde_json`; the few places that emit JSON
//! (metric snapshots, the JSON-lines trace sink, bench output) write it
//! through these helpers instead. Output is always a single line unless
//! the caller inserts newlines.

/// Append `s` to `out` as a JSON string literal, with quoting and escapes.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an `f64` in a JSON-legal form (`NaN`/infinities become `null`).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Ensure a decimal point or exponent so the value re-parses as a
        // float, not an integer.
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Render a `key: value` prefix (escaped key, colon) into `out`.
pub fn push_key(out: &mut String, key: &str) {
    push_str(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str(&mut s, &format!("a\"b\\c\nd{}", char::from(1)));
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn control_chars_get_u_escapes_non_ascii_passes_through() {
        // Every C0 control character must come out as an escape — either
        // a short form or `\uXXXX` — so a sink line stays one line.
        for c in (0u32..0x20).map(|u| char::from_u32(u).unwrap()) {
            let mut s = String::new();
            push_str(&mut s, &c.to_string());
            assert!(
                s.len() > 3 && s.chars().nth(1) == Some('\\'),
                "U+{:04X} rendered unescaped: {s:?}",
                c as u32
            );
        }
        let mut s = String::new();
        push_str(&mut s, "\u{0}");
        assert_eq!(s, "\"\\u0000\"");
        // Non-ASCII is not escaped: the output is UTF-8 JSON, and
        // endpoint names or error strings may carry any of it.
        s.clear();
        push_str(&mut s, "naïve λ калькулятор 日本語 🚀");
        assert_eq!(s, "\"naïve λ калькулятор 日本語 🚀\"");
        // DEL (0x7f) is above the C0 range and passes through.
        s.clear();
        push_str(&mut s, "\u{7f}");
        assert_eq!(s, "\"\u{7f}\"");
    }

    #[test]
    fn quotes_and_backslashes_round_trip_shape() {
        let mut s = String::new();
        push_str(&mut s, r#"a\"b"#);
        assert_eq!(s, r#""a\\\"b""#);
        s.clear();
        push_str(&mut s, "\\\\");
        assert_eq!(s, r#""\\\\""#);
    }

    #[test]
    fn floats_reparse_as_floats() {
        let mut s = String::new();
        push_f64(&mut s, 3.0);
        assert_eq!(s, "3.0");
        s.clear();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        s.clear();
        push_f64(&mut s, 0.25);
        assert_eq!(s, "0.25");
    }
}

//! Dependency-free OpenMetrics text exposition, plus a minimal parser /
//! validator for it.
//!
//! [`render`] turns a registry [`Snapshot`] into the OpenMetrics text
//! format (the Prometheus exposition format's standardised successor):
//! counters become `<family>_total` samples, gauges plain samples, and
//! histograms full `_bucket{le="..."}` / `_sum` / `_count` series built
//! from the log2 buckets — whose *inclusive* upper edges are exactly
//! OpenMetrics `le` semantics, so no resolution is lost in translation.
//!
//! Name mapping: dotted registry names are mangled to underscores
//! (`reneg.epoch_swaps` → `reneg_epoch_swaps`), except the per-layer
//! profiler names `stack.<layer>.<rest>`, which collapse into one family
//! per `<rest>` with a `layer` label (`stack.reliable_arq.send_us` →
//! `stack_send_us{layer="reliable_arq"}`), so a scraper aggregates or
//! facets across layers without regex gymnastics. Recognised unit
//! suffixes (`_us`, `_bytes`, `_frames`, `_msgs`) emit `# UNIT` lines.
//!
//! Histogram buckets carry [`Exemplar`]s — `# {trace_id="..."} v ts`
//! appended to the bucket containing the layer's worst observation — so
//! a p99 outlier on a dashboard links straight to a trace id and from
//! there to a flight-recorder dump.
//!
//! [`parse_and_validate`] is the other half, in the same hand-rolled
//! spirit as `bench_compare`'s JSON parser: enough of the spec to gate
//! CI on (`# EOF` termination, TYPE-before-samples, sample-suffix
//! discipline, `le` monotonicity and cumulative consistency, label and
//! exemplar syntax) and to power `bertha-top`'s table without pulling in
//! a Prometheus client crate.

use crate::metrics::{HistogramSnapshot, Snapshot};
use crate::profile::{self, Exemplar};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};

/// Unit suffixes recognised on metric names, emitted as `# UNIT` lines.
const UNITS: &[&str] = &["us", "bytes", "frames", "msgs"];

/// Mangle one dotted metric name into an OpenMetrics family name plus
/// labels: `stack.<layer>.<rest>` collapses into `stack_<rest>` with a
/// `layer` label; everything else maps dots (and any other invalid
/// characters) to underscores.
fn family_of(name: &str) -> (String, Vec<(String, String)>) {
    let mut parts = name.splitn(3, '.');
    if let (Some("stack"), Some(layer), Some(rest)) = (parts.next(), parts.next(), parts.next()) {
        return (
            format!("stack_{}", mangle(rest)),
            vec![("layer".to_owned(), layer.to_owned())],
        );
    }
    (mangle(name), Vec::new())
}

fn mangle(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn unit_of(family: &str) -> Option<&'static str> {
    UNITS
        .iter()
        .find(|u| {
            family
                .strip_suffix(*u)
                .is_some_and(|prefix| prefix.ends_with('_'))
        })
        .copied()
}

/// Escape a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape HELP text: `\` → `\\`, newline → `\n`.
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
}

#[derive(Debug)]
enum Series {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot, Option<Exemplar>),
}

#[derive(Debug, Default)]
struct FamilyRender {
    /// Original dotted names feeding this family, for HELP text.
    sources: Vec<String>,
    /// One series per label set, in insertion (BTreeMap-iteration) order.
    series: Vec<(Vec<(String, String)>, Series)>,
}

/// Render a snapshot (plus histogram exemplars keyed by dotted metric
/// name) as OpenMetrics text, terminated by `# EOF`.
pub fn render(snap: &Snapshot, exemplars: &BTreeMap<String, Exemplar>) -> String {
    // Group by family: counters, gauges, histograms keep separate family
    // namespaces in the registry but must not collide in the exposition —
    // name mangling keeps them distinct because registry names are
    // per-kind unique and the mangling is injective enough in practice
    // (the validator would catch a TYPE redeclaration).
    let mut families: BTreeMap<String, (&'static str, FamilyRender)> = BTreeMap::new();
    for (name, v) in &snap.counters {
        let (family, labels) = family_of(name);
        let family = family.strip_suffix("_total").unwrap_or(&family).to_owned();
        let f = families.entry(family).or_insert_with(|| ("counter", FamilyRender::default()));
        f.1.sources.push(name.clone());
        f.1.series.push((labels, Series::Counter(*v)));
    }
    for (name, v) in &snap.gauges {
        let (family, labels) = family_of(name);
        let f = families.entry(family).or_insert_with(|| ("gauge", FamilyRender::default()));
        f.1.sources.push(name.clone());
        f.1.series.push((labels, Series::Gauge(*v)));
    }
    for (name, h) in &snap.histograms {
        let (family, labels) = family_of(name);
        let f = families.entry(family).or_insert_with(|| ("histogram", FamilyRender::default()));
        f.1.sources.push(name.clone());
        f.1.series.push((labels, Series::Histogram(h.clone(), exemplars.get(name).cloned())));
    }

    let mut out = String::with_capacity(4096);
    for (family, (kind, fr)) in &families {
        let _ = writeln!(out, "# TYPE {family} {kind}");
        if let Some(unit) = unit_of(family) {
            let _ = writeln!(out, "# UNIT {family} {unit}");
        }
        let _ = writeln!(
            out,
            "# HELP {family} bertha {kind} {}",
            escape_help(&fr.sources.join(", "))
        );
        for (labels, series) in &fr.series {
            match series {
                Series::Counter(v) => {
                    out.push_str(family);
                    out.push_str("_total");
                    render_labels(&mut out, labels, None);
                    let _ = writeln!(out, " {v}");
                }
                Series::Gauge(v) => {
                    out.push_str(family);
                    render_labels(&mut out, labels, None);
                    let _ = writeln!(out, " {v}");
                }
                Series::Histogram(h, exemplar) => {
                    render_histogram(&mut out, family, labels, h, exemplar.as_ref());
                }
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

fn render_histogram(
    out: &mut String,
    family: &str,
    labels: &[(String, String)],
    h: &HistogramSnapshot,
    exemplar: Option<&Exemplar>,
) {
    for (edge, cum) in h.cumulative() {
        out.push_str(family);
        out.push_str("_bucket");
        render_labels(out, labels, Some(("le", &edge.to_string())));
        let _ = write!(out, " {cum}");
        // The exemplar belongs to the first bucket whose range contains
        // its value (OpenMetrics requires the exemplar to fall inside
        // the bucket it annotates). Edges are inclusive and ascending,
        // so that is the first edge >= value — except values beyond the
        // last finite edge, which annotate +Inf below.
        if let Some(ex) = exemplar {
            if ex.value <= edge
                && h.buckets
                    .iter()
                    .find(|(e, _)| *e >= ex.value)
                    .is_some_and(|(e, _)| *e == edge)
            {
                write_exemplar(out, ex);
            }
        }
        out.push('\n');
    }
    out.push_str(family);
    out.push_str("_bucket");
    render_labels(out, labels, Some(("le", "+Inf")));
    let _ = write!(out, " {}", h.count);
    if let Some(ex) = exemplar {
        if h.buckets.last().is_none_or(|(e, _)| ex.value > *e) {
            write_exemplar(out, ex);
        }
    }
    out.push('\n');
    out.push_str(family);
    out.push_str("_sum");
    render_labels(out, labels, None);
    let _ = writeln!(out, " {}", h.sum);
    out.push_str(family);
    out.push_str("_count");
    render_labels(out, labels, None);
    let _ = writeln!(out, " {}", h.count);
}

fn write_exemplar(out: &mut String, ex: &Exemplar) {
    let _ = write!(
        out,
        " # {{trace_id=\"{}\"}} {} {}.{:06}",
        escape_label(&ex.trace_hex),
        ex.value,
        ex.ts_us / 1_000_000,
        ex.ts_us % 1_000_000
    );
}

/// This binary's identity, as exposed in `bertha_build_info`:
/// `(crate version, git hash)`. The hash comes from `BERTHA_GIT_HASH` at
/// compile time (CI sets it); `unknown` otherwise.
pub fn build_info() -> (&'static str, &'static str) {
    (
        option_env!("CARGO_PKG_VERSION").unwrap_or("0.0.0"),
        option_env!("BERTHA_GIT_HASH").unwrap_or("unknown"),
    )
}

/// Render the process-global registry plus the profiler's exemplars,
/// refreshing the `process.uptime_s` gauge and appending the
/// `bertha_build` info family — so every scrape can be correlated to a
/// binary and to how long it has been up.
pub fn render_global() -> String {
    crate::metrics::gauge("process.uptime_s").set(crate::trace::uptime().as_secs() as i64);
    let mut out = render(&crate::metrics::global().snapshot(), &profile::exemplars());
    let tail = "# EOF\n";
    if let Some(pos) = out.rfind(tail) {
        out.truncate(pos);
    }
    let (version, git_hash) = build_info();
    out.push_str("# TYPE bertha_build info\n");
    out.push_str("# HELP bertha_build build identity of this binary\n");
    let _ = writeln!(
        out,
        "bertha_build_info{{version=\"{}\",git_hash=\"{}\"}} 1",
        escape_label(version),
        escape_label(git_hash)
    );
    out.push_str(tail);
    out
}

// ---------------------------------------------------------------------------
// Parser / validator
// ---------------------------------------------------------------------------

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (family plus any suffix, e.g. `foo_bucket`).
    pub name: String,
    /// Label pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
    /// Exemplar, if present: (labels, value).
    pub exemplar: Option<(Vec<(String, String)>, f64)>,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One parsed metric family: its declared type, optional unit, and
/// samples in exposition order.
#[derive(Debug, Clone, Default)]
pub struct Family {
    /// Declared type: `counter`, `gauge`, `histogram`, ...
    pub kind: String,
    /// Declared unit, if any.
    pub unit: Option<String>,
    /// Samples belonging to this family.
    pub samples: Vec<Sample>,
}

/// A parsed exposition: families keyed by name.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Families by family name.
    pub families: BTreeMap<String, Family>,
}

impl Exposition {
    /// The single value of sample `name` (with its family-specific
    /// suffix already applied, e.g. `foo_total`) with no label filter;
    /// `None` if absent or ambiguous.
    pub fn value(&self, sample_name: &str) -> Option<f64> {
        let mut hits = self.families.values().flat_map(|f| &f.samples).filter(|s| s.name == sample_name);
        let first = hits.next()?;
        if hits.next().is_some() {
            return None;
        }
        Some(first.value)
    }

    /// All samples named `sample_name`, across families.
    pub fn samples_named(&self, sample_name: &str) -> Vec<&Sample> {
        self.families
            .values()
            .flat_map(|f| &f.samples)
            .filter(|s| s.name == sample_name)
            .collect()
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(tok: &str) -> Result<f64, String> {
    match tok {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        t => t.parse::<f64>().map_err(|e| format!("bad value {t:?}: {e}")),
    }
}

/// Parse `{k="v",...}` starting at `rest` (which begins with `{`);
/// returns (labels, remainder after `}`).
fn parse_labels(rest: &str) -> Result<(Vec<(String, String)>, &str), String> {
    let mut labels = Vec::new();
    if !rest.starts_with('{') {
        return Err("expected '{'".into());
    }
    let mut i = 1;
    loop {
        if rest[i..].starts_with('}') {
            return Ok((labels, &rest[i + 1..]));
        }
        // key
        let key_end = rest[i..]
            .find('=')
            .ok_or_else(|| format!("label without '=' in {rest:?}"))?;
        let key = &rest[i..i + key_end];
        if !valid_name(key) {
            return Err(format!("invalid label name {key:?}"));
        }
        i += key_end + 1;
        if !rest[i..].starts_with('"') {
            return Err(format!("unquoted label value in {rest:?}"));
        }
        i += 1;
        // quoted, escaped value
        let mut val = String::new();
        let bytes = rest.as_bytes();
        loop {
            match bytes.get(i) {
                None => return Err(format!("unterminated label value in {rest:?}")),
                Some(b'"') => {
                    i += 1;
                    break;
                }
                Some(b'\\') => {
                    match bytes.get(i + 1) {
                        Some(b'\\') => val.push('\\'),
                        Some(b'"') => val.push('"'),
                        Some(b'n') => val.push('\n'),
                        other => return Err(format!("bad escape {other:?} in {rest:?}")),
                    }
                    i += 2;
                }
                Some(_) => {
                    let c = rest[i..]
                        .chars()
                        .next()
                        .ok_or_else(|| format!("label value truncated in {rest:?}"))?;
                    val.push(c);
                    i += c.len_utf8();
                }
            }
        }
        labels.push((key.to_owned(), val));
        if rest[i..].starts_with(',') {
            i += 1;
        } else if !rest[i..].starts_with('}') {
            return Err(format!("expected ',' or '}}' after label in {rest:?}"));
        }
    }
}

fn parse_sample_line(line: &str) -> Result<Sample, String> {
    let name_end = line
        .find(|c: char| c == '{' || c == ' ')
        .ok_or_else(|| format!("sample without value: {line:?}"))?;
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(format!("invalid sample name {name:?}"));
    }
    let (labels, rest) = if line[name_end..].starts_with('{') {
        parse_labels(&line[name_end..])?
    } else {
        (Vec::new(), &line[name_end..])
    };
    let rest = rest.trim_start();
    // Value, optional timestamp, optional "# {exlabels} exvalue [exts]".
    let (main, exemplar_part) = match rest.find(" # ") {
        Some(p) => (&rest[..p], Some(rest[p + 3..].trim())),
        None => (rest, None),
    };
    let mut toks = main.split_whitespace();
    let value = parse_value(toks.next().ok_or_else(|| format!("missing value: {line:?}"))?)?;
    if let Some(ts) = toks.next() {
        ts.parse::<f64>()
            .map_err(|e| format!("bad timestamp {ts:?}: {e}"))?;
    }
    if toks.next().is_some() {
        return Err(format!("trailing tokens on sample line: {line:?}"));
    }
    let exemplar = match exemplar_part {
        None => None,
        Some(ex) => {
            if !ex.starts_with('{') {
                return Err(format!("exemplar without labels: {line:?}"));
            }
            let (exl, rest) = parse_labels(ex)?;
            let mut toks = rest.trim().split_whitespace();
            let exv = parse_value(
                toks.next()
                    .ok_or_else(|| format!("exemplar without value: {line:?}"))?,
            )?;
            if let Some(ts) = toks.next() {
                ts.parse::<f64>()
                    .map_err(|e| format!("bad exemplar timestamp {ts:?}: {e}"))?;
            }
            if toks.next().is_some() {
                return Err(format!("trailing tokens after exemplar: {line:?}"));
            }
            Some((exl, exv))
        }
    };
    Ok(Sample {
        name: name.to_owned(),
        labels,
        value,
        exemplar,
    })
}

/// The family a sample name belongs to, given the declared families:
/// longest declared prefix such that the remainder is an allowed suffix
/// for that family's type.
fn family_for_sample<'a>(
    families: &'a BTreeMap<String, Family>,
    sample: &str,
) -> Option<(&'a str, &'static str)> {
    for (fname, fam) in families.iter().rev() {
        if let Some(suffix) = sample.strip_prefix(fname.as_str()) {
            let ok: Option<&'static str> = match (fam.kind.as_str(), suffix) {
                ("counter", "_total") => Some("_total"),
                ("gauge", "") => Some(""),
                ("histogram", "_bucket") => Some("_bucket"),
                ("histogram", "_sum") => Some("_sum"),
                ("histogram", "_count") => Some("_count"),
                ("info", "_info") => Some("_info"),
                _ => None,
            };
            if let Some(sfx) = ok {
                return Some((fname.as_str(), sfx));
            }
        }
    }
    None
}

/// Parse and validate an OpenMetrics exposition. Checks, beyond syntax:
/// `# EOF` termination; every sample belongs to a declared family with a
/// type-appropriate suffix; families declared once; units are name
/// suffixes; histogram `le` values strictly increasing with
/// nondecreasing cumulative counts, a `+Inf` bucket, and `+Inf` count
/// consistent with `_count`; exemplars only on `_bucket` and `_total`
/// samples.
pub fn parse_and_validate(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    let mut saw_eof = false;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if saw_eof {
            return Err(format!("line {n}: content after # EOF"));
        }
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix("# ") {
            if meta == "EOF" {
                saw_eof = true;
                continue;
            }
            let mut toks = meta.splitn(3, ' ');
            match (toks.next(), toks.next(), toks.next()) {
                (Some("TYPE"), Some(name), Some(kind)) => {
                    if !valid_name(name) {
                        return Err(format!("line {n}: invalid family name {name:?}"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "info" | "stateset" | "unknown"
                    ) {
                        return Err(format!("line {n}: unknown type {kind:?}"));
                    }
                    if kind == "counter" && name.ends_with("_total") {
                        return Err(format!(
                            "line {n}: counter family {name:?} must not include the _total suffix"
                        ));
                    }
                    let fam = exp.families.entry(name.to_owned()).or_default();
                    if !fam.kind.is_empty() {
                        return Err(format!("line {n}: family {name:?} declared twice"));
                    }
                    fam.kind = kind.to_owned();
                }
                (Some("UNIT"), Some(name), Some(unit)) => {
                    let fam = exp
                        .families
                        .get_mut(name)
                        .ok_or_else(|| format!("line {n}: UNIT before TYPE for {name:?}"))?;
                    if !name.ends_with(&format!("_{unit}")) {
                        return Err(format!(
                            "line {n}: unit {unit:?} is not a suffix of {name:?}"
                        ));
                    }
                    fam.unit = Some(unit.to_owned());
                }
                (Some("HELP"), Some(name), _) => {
                    if !exp.families.contains_key(name) {
                        return Err(format!("line {n}: HELP before TYPE for {name:?}"));
                    }
                }
                _ => return Err(format!("line {n}: malformed metadata line {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {n}: malformed comment {line:?}"));
        }
        let sample = parse_sample_line(line).map_err(|e| format!("line {n}: {e}"))?;
        let (fname, suffix) = family_for_sample(&exp.families, &sample.name)
            .ok_or_else(|| format!("line {n}: sample {:?} has no declared family", sample.name))?;
        if sample.exemplar.is_some() && !matches!(suffix, "_bucket" | "_total") {
            return Err(format!(
                "line {n}: exemplar on non-bucket/total sample {:?}",
                sample.name
            ));
        }
        let fname = fname.to_owned();
        if let Some(fam) = exp.families.get_mut(&fname) {
            fam.samples.push(sample);
        }
    }
    if !saw_eof {
        return Err("missing terminal # EOF".into());
    }
    validate_histograms(&exp)?;
    Ok(exp)
}

fn validate_histograms(exp: &Exposition) -> Result<(), String> {
    for (fname, fam) in &exp.families {
        if fam.kind != "histogram" {
            continue;
        }
        // Group series by their labels minus `le`.
        let mut groups: BTreeMap<String, (Vec<(f64, f64)>, Option<f64>)> = BTreeMap::new();
        for s in &fam.samples {
            let key: String = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v};"))
                .collect();
            let entry = groups.entry(key).or_default();
            if s.name == format!("{fname}_bucket") {
                let le = s
                    .label("le")
                    .ok_or_else(|| format!("{fname}: bucket without le label"))?;
                let le = parse_value(le).map_err(|e| format!("{fname}: {e}"))?;
                entry.0.push((le, s.value));
            } else if s.name == format!("{fname}_count") {
                entry.1 = Some(s.value);
            }
        }
        for (key, (buckets, count)) in &groups {
            if buckets.is_empty() {
                return Err(format!("{fname}{{{key}}}: histogram without buckets"));
            }
            for w in buckets.windows(2) {
                if w[1].0 <= w[0].0 {
                    return Err(format!(
                        "{fname}{{{key}}}: le values not strictly increasing ({} then {})",
                        w[0].0, w[1].0
                    ));
                }
                if w[1].1 < w[0].1 {
                    return Err(format!(
                        "{fname}{{{key}}}: bucket counts not cumulative ({} then {})",
                        w[0].1, w[1].1
                    ));
                }
            }
            let last = buckets
                .last()
                .ok_or_else(|| format!("{fname}{{{key}}}: no buckets"))?;
            if !last.0.is_infinite() {
                return Err(format!("{fname}{{{key}}}: missing +Inf bucket"));
            }
            if let Some(c) = count {
                if *c != last.1 {
                    return Err(format!(
                        "{fname}{{{key}}}: +Inf bucket {} != _count {c}",
                        last.1
                    ));
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// TCP exposition listener
// ---------------------------------------------------------------------------

/// Serve the global registry as OpenMetrics over HTTP/1.0 on `addr`
/// (e.g. `127.0.0.1:9184`). Returns the bound address (so `:0` works in
/// tests); the accept loop runs on a detached thread for the life of the
/// process — deliberately plain `std::net`, keeping the telemetry crate
/// runtime-free.
pub fn serve_http(addr: &str) -> std::io::Result<std::net::SocketAddr> {
    let listener = std::net::TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("bertha-metrics".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut conn) = conn else { continue };
                // Drain the request head; we serve the same document for
                // any path, so only well-formedness matters.
                let mut buf = [0u8; 1024];
                let _ = conn.read(&mut buf);
                let body = render_global();
                let head = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: application/openmetrics-text; version=1.0.0; charset=utf-8\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                );
                let _ = conn.write_all(head.as_bytes());
                let _ = conn.write_all(body.as_bytes());
            }
        })?;
    Ok(bound)
}

/// Start the TCP exposition listener if `BERTHA_METRICS_LISTEN` is set
/// to a bind address. Returns the bound address if one was started.
pub fn install_listener_from_env() -> Result<Option<std::net::SocketAddr>, String> {
    match std::env::var("BERTHA_METRICS_LISTEN") {
        Err(_) => Ok(None),
        Ok(v) if v.trim().is_empty() || v.trim() == "off" => Ok(None),
        Ok(v) => serve_http(v.trim())
            .map(Some)
            .map_err(|e| format!("BERTHA_METRICS_LISTEN: cannot bind {v}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn render_registry(r: &Registry) -> String {
        render(&r.snapshot(), &BTreeMap::new())
    }

    #[test]
    fn global_render_carries_uptime_and_build_info_and_validates() {
        let text = render_global();
        assert!(text.contains("# TYPE process_uptime_s gauge\n"), "{text}");
        assert!(text.contains("\nprocess_uptime_s "), "{text}");
        assert!(text.contains("# TYPE bertha_build info\n"), "{text}");
        let (version, _) = build_info();
        assert!(
            text.contains(&format!("bertha_build_info{{version=\"{version}\",git_hash=\"")),
            "{text}"
        );
        // The whole exposition — info family included — must survive the
        // validator, and the info sample must land in its family.
        let exp = parse_and_validate(&text).expect("global render validates");
        assert_eq!(exp.families["bertha_build"].kind, "info");
        assert_eq!(exp.families["bertha_build"].samples.len(), 1);
        assert_eq!(exp.families["bertha_build"].samples[0].value, 1.0);
        assert_eq!(
            exp.families["bertha_build"].samples[0].label("version"),
            Some(version)
        );
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let r = Registry::new();
        r.counter("reneg.epoch_swaps").add(3);
        r.gauge("discovery.leases").set(2);
        r.histogram("reneg.swap_us").record(100);
        let text = render_registry(&r);
        assert!(text.contains("# TYPE reneg_epoch_swaps counter\n"), "{text}");
        assert!(text.contains("reneg_epoch_swaps_total 3\n"), "{text}");
        assert!(text.contains("# TYPE discovery_leases gauge\n"), "{text}");
        assert!(text.contains("discovery_leases 2\n"), "{text}");
        assert!(text.contains("# TYPE reneg_swap_us histogram\n"), "{text}");
        assert!(text.contains("# UNIT reneg_swap_us us\n"), "{text}");
        assert!(text.contains("reneg_swap_us_bucket{le=\"127\"} 1\n"), "{text}");
        assert!(text.contains("reneg_swap_us_bucket{le=\"+Inf\"} 1\n"), "{text}");
        assert!(text.contains("reneg_swap_us_sum 100\n"), "{text}");
        assert!(text.contains("reneg_swap_us_count 1\n"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
        parse_and_validate(&text).expect("rendered exposition validates");
    }

    #[test]
    fn stack_names_collapse_into_layer_labels() {
        let r = Registry::new();
        r.counter("stack.reliable_arq.send_frames").add(7);
        r.counter("stack.batch_linger.send_frames").add(9);
        r.histogram("stack.reliable_arq.send_us").record(50);
        let text = render_registry(&r);
        assert!(
            text.contains("stack_send_frames_total{layer=\"reliable_arq\"} 7\n"),
            "{text}"
        );
        assert!(
            text.contains("stack_send_frames_total{layer=\"batch_linger\"} 9\n"),
            "{text}"
        );
        assert!(
            text.contains("stack_send_us_bucket{layer=\"reliable_arq\",le=\"63\"} 1\n"),
            "{text}"
        );
        // One TYPE line per family, not per layer.
        assert_eq!(text.matches("# TYPE stack_send_frames counter").count(), 1);
        let exp = parse_and_validate(&text).expect("validates");
        assert_eq!(exp.samples_named("stack_send_frames_total").len(), 2);
    }

    #[test]
    fn exemplars_attach_to_the_containing_bucket() {
        let r = Registry::new();
        let h = r.histogram("stack.reliable_arq.send_us");
        h.record(5);
        h.record(100);
        let mut ex = BTreeMap::new();
        ex.insert(
            "stack.reliable_arq.send_us".to_owned(),
            Exemplar {
                value: 100,
                trace_hex: "cafe".repeat(8),
                ts_us: 1_700_000_000_123_456,
            },
        );
        let text = render(&r.snapshot(), &ex);
        // 100 lands in the (64..=127] bucket, edge 127.
        let line = text
            .lines()
            .find(|l| l.contains("le=\"127\""))
            .expect("bucket line");
        assert!(
            line.contains("# {trace_id=\"cafecafecafecafecafecafecafecafe\"} 100 1700000000.123456"),
            "{line}"
        );
        // Only that one bucket carries it.
        assert_eq!(text.matches("trace_id").count(), 1, "{text}");
        parse_and_validate(&text).expect("exemplar syntax validates");
    }

    #[test]
    fn exemplar_beyond_last_bucket_annotates_inf() {
        let r = Registry::new();
        r.histogram("stack.x.send_us").record(5);
        let mut ex = BTreeMap::new();
        ex.insert(
            "stack.x.send_us".to_owned(),
            Exemplar {
                value: 10_000,
                trace_hex: "ab".repeat(16),
                ts_us: 1,
            },
        );
        let text = render(&r.snapshot(), &ex);
        let line = text
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .expect("inf bucket");
        assert!(line.contains("trace_id"), "{line}");
        parse_and_validate(&text).expect("validates");
    }

    #[test]
    fn label_values_escape() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let r = Registry::new();
        r.counter("stack.we\"ird\\layer.send_frames").incr();
        let text = render_registry(&r);
        assert!(
            text.contains("layer=\"we\\\"ird\\\\layer\""),
            "{text}"
        );
        let exp = parse_and_validate(&text).expect("escaped labels validate");
        let s = exp.samples_named("stack_send_frames_total");
        assert_eq!(s[0].label("layer"), Some("we\"ird\\layer"));
    }

    #[test]
    fn validator_rejects_structural_errors() {
        // No EOF.
        assert!(parse_and_validate("# TYPE a counter\na_total 1\n")
            .unwrap_err()
            .contains("EOF"));
        // Content after EOF.
        assert!(parse_and_validate("# EOF\nx 1\n").unwrap_err().contains("after"));
        // Sample without TYPE.
        assert!(parse_and_validate("orphan 1\n# EOF\n")
            .unwrap_err()
            .contains("no declared family"));
        // Counter sample missing _total.
        assert!(parse_and_validate("# TYPE a counter\na 1\n# EOF\n")
            .unwrap_err()
            .contains("no declared family"));
        // Counter family declared with _total.
        assert!(
            parse_and_validate("# TYPE a_total counter\na_total_total 1\n# EOF\n")
                .unwrap_err()
                .contains("_total"),
        );
        // Duplicate family.
        assert!(
            parse_and_validate("# TYPE a counter\n# TYPE a counter\n# EOF\n")
                .unwrap_err()
                .contains("twice")
        );
        // Unit not a suffix.
        assert!(
            parse_and_validate("# TYPE a_us histogram\n# UNIT a_us bytes\n# EOF\n")
                .unwrap_err()
                .contains("suffix")
        );
        // Unterminated label value.
        assert!(parse_and_validate("# TYPE a gauge\na{k=\"v} 1\n# EOF\n").is_err());
    }

    #[test]
    fn validator_rejects_histogram_inconsistencies() {
        // Non-monotone le.
        let t = "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_count 2\nh_sum 9\n# EOF\n";
        assert!(parse_and_validate(t).unwrap_err().contains("strictly increasing"));
        // Non-cumulative counts.
        let t = "# TYPE h histogram\nh_bucket{le=\"5\"} 3\nh_bucket{le=\"+Inf\"} 2\nh_count 2\nh_sum 9\n# EOF\n";
        assert!(parse_and_validate(t).unwrap_err().contains("cumulative"));
        // Missing +Inf.
        let t = "# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_count 1\nh_sum 5\n# EOF\n";
        assert!(parse_and_validate(t).unwrap_err().contains("+Inf"));
        // +Inf disagrees with _count.
        let t = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\nh_sum 5\n# EOF\n";
        assert!(parse_and_validate(t).unwrap_err().contains("_count"));
        // Exemplar on a gauge.
        let t = "# TYPE g gauge\ng 1 # {trace_id=\"ab\"} 1\n# EOF\n";
        assert!(parse_and_validate(t).unwrap_err().contains("exemplar"));
    }

    #[test]
    fn http_listener_serves_a_valid_exposition() {
        crate::metrics::counter("openmetrics.http_test_total_probe").incr();
        let addr = serve_http("127.0.0.1:0").expect("bind");
        let mut conn = std::net::TcpStream::connect(addr).expect("connect");
        conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 200 OK\r\n"), "{resp}");
        assert!(resp.contains("application/openmetrics-text"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        let exp = parse_and_validate(body).expect("served exposition validates");
        assert!(exp
            .families
            .contains_key("openmetrics_http_test_total_probe"));
    }
}

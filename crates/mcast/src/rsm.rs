//! A replicated state machine over ordered multicast (§3.2's consensus use
//! case).
//!
//! With the sequencer providing a single total order, replication is
//! trivial: every replica applies the same command stream to a
//! deterministic state machine and stays identical — the property NOPaxos
//! exploits to skip coordination on the fast path. Commands are submitted
//! by publishing to the group; a replica learns its own commands' results
//! when they come back around in order.

use crate::chunnel::OrderedMcastConn;
use bertha::conn::{ChunnelConnection, Datagram};
use bertha::{Addr, Error};
use std::sync::Arc;

/// A deterministic state machine.
pub trait StateMachine: Send + Sync {
    /// Apply one command, returning its result. Must be deterministic: the
    /// same command sequence must produce the same results and state at
    /// every replica.
    fn apply(&self, command: &[u8]) -> Vec<u8>;

    /// A digest of the current state, for convergence checks.
    fn digest(&self) -> u64;
}

/// One replica: an ordered-multicast connection plus a state machine.
pub struct Replica<C, S> {
    conn: OrderedMcastConn<C>,
    sm: Arc<S>,
    applied: parking_lot::Mutex<u64>,
}

impl<C, S> Replica<C, S>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
    S: StateMachine,
{
    /// Wrap a joined group connection and a state machine.
    pub fn new(conn: OrderedMcastConn<C>, sm: Arc<S>) -> Self {
        Replica {
            conn,
            sm,
            applied: parking_lot::Mutex::new(0),
        }
    }

    /// Submit a command to the group (it will be applied when delivered).
    pub async fn submit(&self, command: Vec<u8>) -> Result<(), Error> {
        self.conn
            .send((Addr::Named(self.conn.group().to_owned()), command.into()))
            .await
    }

    /// Apply the next command in the total order; returns its result.
    pub async fn step(&self) -> Result<Vec<u8>, Error> {
        let (_, command) = self.conn.recv().await?;
        let result = self.sm.apply(&command);
        *self.applied.lock() += 1;
        Ok(result)
    }

    /// Apply commands until `n` have been applied in total.
    pub async fn run_until(&self, n: u64) -> Result<(), Error> {
        while *self.applied.lock() < n {
            self.step().await?;
        }
        Ok(())
    }

    /// Commands applied so far.
    pub fn applied(&self) -> u64 {
        *self.applied.lock()
    }

    /// The state machine's digest.
    pub fn digest(&self) -> u64 {
        self.sm.digest()
    }
}

/// A small deterministic KV state machine for tests and examples.
/// Commands: `set <key>=<value>` and `append <key>=<value>`, as bytes.
#[derive(Default)]
pub struct KvStateMachine {
    map: parking_lot::Mutex<std::collections::BTreeMap<String, String>>,
}

impl KvStateMachine {
    /// An empty machine.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Read a key (not part of the replicated command set).
    pub fn get(&self, key: &str) -> Option<String> {
        self.map.lock().get(key).cloned()
    }
}

impl StateMachine for KvStateMachine {
    fn apply(&self, command: &[u8]) -> Vec<u8> {
        let Ok(text) = std::str::from_utf8(command) else {
            return b"err: not utf8".to_vec();
        };
        let mut map = self.map.lock();
        let reply = (|| {
            let (verb, rest) = text.split_once(' ')?;
            let (key, value) = rest.split_once('=')?;
            match verb {
                "set" => {
                    map.insert(key.to_owned(), value.to_owned());
                    Some("ok".to_owned())
                }
                "append" => {
                    map.entry(key.to_owned()).or_default().push_str(value);
                    Some("ok".to_owned())
                }
                _ => None,
            }
        })();
        reply
            .unwrap_or_else(|| "err: bad command".to_owned())
            .into_bytes()
    }

    fn digest(&self) -> u64 {
        let map = self.map.lock();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (k, v) in map.iter() {
            for b in k.bytes().chain(std::iter::once(0)).chain(v.bytes()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h = h.rotate_left(7);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunnel::ordered_mcast;
    use crate::sequencer::run_sequencer;
    use bertha::{Chunnel, ChunnelConnector};
    use bertha_transport::mem::MemConnector;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn uniq(name: &str) -> Addr {
        static N: AtomicU64 = AtomicU64::new(0);
        Addr::Mem(format!("rsm-{name}-{}", N.fetch_add(1, Ordering::Relaxed)))
    }

    async fn replica(
        seq_addr: &Addr,
        group: &str,
    ) -> Replica<bertha_transport::mem::MemSocket, KvStateMachine> {
        let raw = MemConnector.connect(seq_addr.clone()).await.unwrap();
        let conn = ordered_mcast(seq_addr.clone(), group)
            .connect_wrap(raw)
            .await
            .unwrap();
        Replica::new(conn, KvStateMachine::new())
    }

    #[tokio::test]
    async fn replicas_converge_under_concurrent_writers() {
        let seq = run_sequencer(uniq("converge")).await.unwrap();
        let replicas = vec![
            replica(seq.addr(), "kv").await,
            replica(seq.addr(), "kv").await,
            replica(seq.addr(), "kv").await,
        ];

        // Every replica concurrently appends to the same key: ordering
        // matters, so convergence demonstrates the sequencer's total order.
        for (i, r) in replicas.iter().enumerate() {
            for j in 0..5 {
                r.submit(format!("append log={}{} ", i, j).into_bytes())
                    .await
                    .unwrap();
            }
        }
        for r in &replicas {
            r.run_until(15).await.unwrap();
        }
        let d0 = replicas[0].digest();
        for r in &replicas {
            assert_eq!(r.digest(), d0, "replica diverged");
            assert_eq!(r.applied(), 15);
        }
    }

    #[tokio::test]
    async fn command_results_flow_back() {
        let seq = run_sequencer(uniq("results")).await.unwrap();
        let r = replica(seq.addr(), "kv").await;
        r.submit(b"set x=1".to_vec()).await.unwrap();
        assert_eq!(r.step().await.unwrap(), b"ok");
        r.submit(b"nonsense".to_vec()).await.unwrap();
        assert_eq!(r.step().await.unwrap(), b"err: bad command");
    }
}

//! The `ordered_mcast()` chunnel: endpoint-side ordered multicast.
//!
//! Wraps a datagram connection; `connect_wrap` joins the group through the
//! sequencer, `send` publishes, and `recv` delivers the group's messages in
//! sequence order, buffering out-of-order arrivals and NACKing gaps.
//! Listing 2's client is `wrap!(serialize() |> ordered_mcast())`.

use crate::sequencer::SeqMsg;
use bertha::conn::{BoxFut, ChunnelConnection, Datagram};
use bertha::negotiate::{guid, Negotiate};
use bertha::{Addr, Chunnel, Error};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Duration;

/// Configuration for [`OrderedMcastChunnel`].
#[derive(Clone, Debug)]
pub struct McastConfig {
    /// The sequencer's address.
    pub sequencer: Addr,
    /// The group to join.
    pub group: String,
    /// Join handshake timeout per attempt.
    pub join_timeout: Duration,
    /// Join attempts before failing the connection.
    pub join_retries: usize,
    /// How often to (re-)request missing sequence numbers while a gap
    /// blocks delivery. Retransmissions are idempotent (duplicates are
    /// dropped), so re-NACKing until the gap closes is safe — and
    /// necessary, since the retransmission itself can be lost.
    pub nack_interval: Duration,
}

/// The `ordered_mcast` chunnel (Listing 2).
#[derive(Clone, Debug)]
pub struct OrderedMcastChunnel {
    cfg: McastConfig,
}

/// Build an `ordered_mcast()` chunnel for a group behind a sequencer.
pub fn ordered_mcast(sequencer: Addr, group: impl Into<String>) -> OrderedMcastChunnel {
    OrderedMcastChunnel {
        cfg: McastConfig {
            sequencer,
            group: group.into(),
            join_timeout: Duration::from_millis(250),
            join_retries: 8,
            nack_interval: Duration::from_millis(20),
        },
    }
}

impl Negotiate for OrderedMcastChunnel {
    const CAPABILITY: u64 = guid("bertha/ordered-mcast");
    const IMPL: u64 = guid("bertha/ordered-mcast/sequencer");
    const NAME: &'static str = "ordered-mcast/sequencer";
}

bertha::negotiable!(OrderedMcastChunnel);

impl<InC> Chunnel<InC> for OrderedMcastChunnel
where
    InC: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Connection = OrderedMcastConn<InC>;

    fn connect_wrap(&self, inner: InC) -> BoxFut<'static, Result<Self::Connection, Error>> {
        let cfg = self.cfg.clone();
        Box::pin(async move {
            // Join (rendezvous through the sequencer: "initial discovery
            // and negotiation involves all endpoints", §3.2).
            let join = bincode::serialize(&SeqMsg::Join {
                group: cfg.group.clone(),
            })?;
            let mut next_seq = None;
            'attempts: for _ in 0..=cfg.join_retries {
                inner.send((cfg.sequencer.clone(), join.clone().into())).await?;
                let deadline = tokio::time::Instant::now() + cfg.join_timeout;
                loop {
                    match tokio::time::timeout_at(deadline, inner.recv()).await {
                        Err(_) => continue 'attempts,
                        Ok(Err(e)) => return Err(e),
                        Ok(Ok((_, buf))) => {
                            if let Ok(SeqMsg::JoinAck { next_seq: ns, .. }) =
                                bincode::deserialize::<SeqMsg>(&buf)
                            {
                                next_seq = Some(ns);
                                break 'attempts;
                            }
                            // Not the ack (e.g. an early Deliver): keep
                            // waiting; the ordering state below tolerates
                            // missing it because the sequencer resends on
                            // NACK.
                        }
                    }
                }
            }
            let next_deliver = next_seq.ok_or(Error::Timeout {
                after: cfg.join_timeout * (cfg.join_retries as u32 + 1),
                what: "sequencer join ack",
            })?;

            Ok(OrderedMcastConn {
                inner,
                cfg,
                state: Mutex::new(OrderState {
                    next_deliver,
                    buffer: BTreeMap::new(),
                    last_nack: None,
                }),
            })
        })
    }
}

struct OrderState {
    next_deliver: u64,
    buffer: BTreeMap<u64, Vec<u8>>,
    last_nack: Option<std::time::Instant>,
}

/// Connection produced by [`OrderedMcastChunnel`]. `send` publishes to the
/// group; `recv` returns `(group address, payload)` in sequence order.
pub struct OrderedMcastConn<C> {
    inner: C,
    cfg: McastConfig,
    state: Mutex<OrderState>,
}

impl<C> OrderedMcastConn<C> {
    /// The group this connection belongs to.
    pub fn group(&self) -> &str {
        &self.cfg.group
    }

    /// Sequence number of the next in-order delivery.
    pub fn next_seq(&self) -> u64 {
        self.state.lock().next_deliver
    }
}

impl<C> ChunnelConnection for OrderedMcastConn<C>
where
    C: ChunnelConnection<Data = Datagram> + Send + Sync + 'static,
{
    type Data = Datagram;

    fn send(&self, (_addr, payload): Datagram) -> BoxFut<'_, Result<(), Error>> {
        Box::pin(async move {
            let publish = bincode::serialize(&SeqMsg::Publish {
                group: self.cfg.group.clone(),
                payload: payload.into_vec(),
            })?;
            self.inner
                .send((self.cfg.sequencer.clone(), publish.into()))
                .await
        })
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            loop {
                // Drain the buffer, and decide whether a gap needs
                // (re-)NACKing.
                let (nack, gap) = {
                    let mut st = self.state.lock();
                    let next = st.next_deliver;
                    if let Some(p) = st.buffer.remove(&next) {
                        st.next_deliver += 1;
                        return Ok((Addr::Named(self.cfg.group.clone()), p.into()));
                    }
                    if st.buffer.is_empty() {
                        st.last_nack = None;
                        (None, false)
                    } else {
                        // A gap blocks delivery: our copy was lost. Ask
                        // the sequencer to replay, and keep asking every
                        // nack_interval until it lands (the replay itself
                        // can be lost too).
                        let due = st
                            .last_nack
                            .map(|t| t.elapsed() >= self.cfg.nack_interval)
                            .unwrap_or(true);
                        if due {
                            st.last_nack = Some(std::time::Instant::now());
                            let first_buffered =
                                *st.buffer.keys().next().expect("buffer non-empty");
                            (Some((next, first_buffered)), true)
                        } else {
                            (None, true)
                        }
                    }
                };
                if let Some((from, to)) = nack {
                    let msg = bincode::serialize(&SeqMsg::Nack {
                        group: self.cfg.group.clone(),
                        from,
                        to,
                    })?;
                    self.inner.send((self.cfg.sequencer.clone(), msg.into())).await?;
                }

                // While a gap is outstanding, wake up periodically to
                // re-NACK even if nothing arrives.
                let recvd = if gap {
                    match tokio::time::timeout(self.cfg.nack_interval, self.inner.recv()).await {
                        Err(_elapsed) => continue,
                        Ok(r) => r?,
                    }
                } else {
                    self.inner.recv().await?
                };
                let (_, buf) = recvd;
                let Ok(SeqMsg::Deliver {
                    group,
                    seq,
                    payload,
                }) = bincode::deserialize(&buf)
                else {
                    continue;
                };
                if group != self.cfg.group {
                    continue;
                }
                let mut st = self.state.lock();
                if seq < st.next_deliver {
                    continue; // duplicate
                }
                if seq == st.next_deliver {
                    st.next_deliver += 1;
                    return Ok((Addr::Named(group), payload.into()));
                }
                st.buffer.insert(seq, payload);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequencer::run_sequencer;
    use bertha::ChunnelConnector;
    use bertha_transport::mem::MemConnector;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn uniq(name: &str) -> Addr {
        static N: AtomicU64 = AtomicU64::new(0);
        Addr::Mem(format!("mcc-{name}-{}", N.fetch_add(1, Ordering::Relaxed)))
    }

    async fn endpoint(
        seq_addr: &Addr,
        group: &str,
    ) -> OrderedMcastConn<bertha_transport::mem::MemSocket> {
        let raw = MemConnector.connect(seq_addr.clone()).await.unwrap();
        ordered_mcast(seq_addr.clone(), group)
            .connect_wrap(raw)
            .await
            .unwrap()
    }

    #[tokio::test]
    async fn three_endpoints_agree_on_order() {
        let seq = run_sequencer(uniq("agree")).await.unwrap();
        let a = endpoint(seq.addr(), "rsm").await;
        let b = endpoint(seq.addr(), "rsm").await;
        let c = endpoint(seq.addr(), "rsm").await;

        let dst = Addr::Named("rsm".into());
        for i in 0..5u8 {
            a.send((dst.clone(), vec![b'a', i].into())).await.unwrap();
            b.send((dst.clone(), vec![b'b', i].into())).await.unwrap();
            c.send((dst.clone(), vec![b'c', i].into())).await.unwrap();
        }
        let mut logs: Vec<Vec<bertha::buf::Frame>> = Vec::new();
        for ep in [&a, &b, &c] {
            let mut log = Vec::new();
            for _ in 0..15 {
                let (_, p) = ep.recv().await.unwrap();
                log.push(p);
            }
            logs.push(log);
        }
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[1], logs[2]);
    }

    #[tokio::test]
    async fn late_joiner_starts_at_current_seq() {
        let seq = run_sequencer(uniq("late")).await.unwrap();
        let a = endpoint(seq.addr(), "g").await;
        let dst = Addr::Named("g".into());
        for i in 0..3u8 {
            a.send((dst.clone(), vec![i].into())).await.unwrap();
        }
        for _ in 0..3 {
            a.recv().await.unwrap();
        }
        // B joins after three messages: it must not stall waiting for 0..3.
        let b = endpoint(seq.addr(), "g").await;
        assert_eq!(b.next_seq(), 3);
        a.send((dst.clone(), vec![9].into())).await.unwrap();
        let (_, p) = b.recv().await.unwrap();
        assert_eq!(p, vec![9]);
    }

    #[tokio::test]
    async fn join_times_out_without_sequencer() {
        let raw = bertha_transport::mem::MemSocket::bind(None).unwrap();
        let dead = uniq("dead-sequencer");
        // Bind the address so sends do not error, then never answer.
        let _sink = bertha_transport::mem::MemSocket::bind(Some(match &dead {
            Addr::Mem(n) => n.clone(),
            _ => unreachable!(),
        }))
        .unwrap();
        let mut chun = ordered_mcast(dead, "g");
        chun.cfg.join_timeout = Duration::from_millis(10);
        chun.cfg.join_retries = 1;
        match chun.connect_wrap(raw).await {
            Err(Error::Timeout { .. }) => {}
            Err(other) => panic!("expected timeout, got {other}"),
            Ok(_) => panic!("expected timeout, got a connection"),
        }
    }
}

//! Ordered multicast (Listing 2, §3.2) and a replicated state machine on
//! top of it.
//!
//! "There is a rich body of work on accelerating consensus protocols,
//! including the use of network offloads for packet ordering. Listing 2
//! shows a potential component of a Speculative Paxos (or NOPaxos)
//! implementation specifying the use of a network-ordering Chunnel
//! (`ordered_mcast`)."
//!
//! The in-network sequencer (a programmable switch in NOPaxos) is
//! simulated by [`sequencer`]: a standalone process that stamps each
//! published message with a group-global sequence number and fans it out —
//! exactly the switch's job, in software (see DESIGN.md substitution 4).
//! [`chunnel`] is the endpoint side: `ordered_mcast()` joins the group,
//! publishes via the sequencer, detects gaps, and requests retransmission,
//! delivering every member the same messages in the same order. [`rsm`]
//! builds the §3.2 use case on top: replicas applying an identical command
//! sequence.

#![warn(missing_docs)]

pub mod chunnel;
pub mod rsm;
pub mod sequencer;

pub use chunnel::{ordered_mcast, OrderedMcastChunnel, OrderedMcastConn};
pub use rsm::{Replica, StateMachine};
pub use sequencer::{run_sequencer, SeqMsg, SequencerHandle};

//! The simulated in-network sequencer.
//!
//! One task, one socket, per-group state: members, the next sequence
//! number, and a bounded history for retransmission. This is the software
//! stand-in for the NOPaxos switch sequencer: it does no application
//! processing, only stamping and fan-out.

use bertha::conn::ChunnelConnection;
use bertha::{Addr, Error};
use bertha_transport::AnyConn;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How many past messages each group retains for retransmission.
pub const HISTORY: usize = 4096;

/// Sequencer protocol messages (bincode on the wire).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum SeqMsg {
    /// A member joins a group (its source address is recorded).
    Join {
        /// Group name.
        group: String,
    },
    /// Join acknowledged.
    JoinAck {
        /// Group name.
        group: String,
        /// Current member count.
        members: u32,
        /// The next sequence number the member will see.
        next_seq: u64,
    },
    /// Publish a payload to the group.
    Publish {
        /// Group name.
        group: String,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// Sequenced delivery, fanned out to every member.
    Deliver {
        /// Group name.
        group: String,
        /// The group-global sequence number.
        seq: u64,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// A member detected a gap and wants `[from, to)` again.
    Nack {
        /// Group name.
        group: String,
        /// First missing sequence number.
        from: u64,
        /// One past the last missing sequence number.
        to: u64,
    },
}

struct Group {
    members: Vec<Addr>,
    next_seq: u64,
    history: VecDeque<(u64, Vec<u8>)>,
}

/// Counters for a running sequencer.
#[derive(Default)]
pub struct SeqStats {
    /// Messages sequenced.
    pub sequenced: AtomicU64,
    /// Retransmissions served.
    pub retransmits: AtomicU64,
}

/// A running sequencer; dropping the handle stops it.
pub struct SequencerHandle {
    task: tokio::task::JoinHandle<()>,
    addr: Addr,
    /// Live counters.
    pub stats: Arc<SeqStats>,
}

impl SequencerHandle {
    /// The address endpoints publish to.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }
}

impl Drop for SequencerHandle {
    fn drop(&mut self) {
        self.task.abort();
    }
}

/// Start a sequencer on `addr` (UDP or in-memory).
pub async fn run_sequencer(addr: Addr) -> Result<SequencerHandle, Error> {
    let sock = match &addr {
        Addr::Udp(_) => AnyConn::Udp(bertha_transport::udp::bind_udp(&addr).await?),
        Addr::Mem(name) => {
            AnyConn::Mem(bertha_transport::mem::MemSocket::bind(Some(name.clone()))?)
        }
        other => {
            return Err(Error::Other(format!(
                "sequencer cannot bind a {} address",
                other.family()
            )))
        }
    };
    let bound = sock.local_addr()?;
    let stats = Arc::new(SeqStats::default());
    let task = {
        let stats = Arc::clone(&stats);
        tokio::spawn(async move {
            let mut groups: HashMap<String, Group> = HashMap::new();
            loop {
                let (from, buf) = match sock.recv().await {
                    Ok(d) => d,
                    Err(_) => return,
                };
                let Ok(msg) = bincode::deserialize::<SeqMsg>(&buf) else {
                    continue;
                };
                match msg {
                    SeqMsg::Join { group } => {
                        let g = groups.entry(group.clone()).or_insert_with(|| Group {
                            members: Vec::new(),
                            next_seq: 0,
                            history: VecDeque::new(),
                        });
                        if !g.members.contains(&from) {
                            g.members.push(from.clone());
                        }
                        let ack = SeqMsg::JoinAck {
                            group,
                            members: g.members.len() as u32,
                            next_seq: g.next_seq,
                        };
                        let Ok(body) = bincode::serialize(&ack) else {
                            continue;
                        };
                        let _ = sock.send((from, body.into())).await;
                    }
                    SeqMsg::Publish { group, payload } => {
                        let Some(g) = groups.get_mut(&group) else {
                            continue; // publish from a non-member group: drop
                        };
                        let seq = g.next_seq;
                        g.next_seq += 1;
                        g.history.push_back((seq, payload.clone()));
                        if g.history.len() > HISTORY {
                            g.history.pop_front();
                        }
                        stats.sequenced.fetch_add(1, Ordering::Relaxed);
                        let deliver = SeqMsg::Deliver {
                            group: group.clone(),
                            seq,
                            payload,
                        };
                        let Ok(body) = bincode::serialize(&deliver) else {
                            continue;
                        };
                        for m in &g.members {
                            let _ = sock.send((m.clone(), body.clone().into())).await;
                        }
                    }
                    SeqMsg::Nack {
                        group,
                        from: lo,
                        to,
                    } => {
                        let Some(g) = groups.get(&group) else {
                            continue;
                        };
                        for (seq, payload) in g.history.iter() {
                            if *seq >= lo && *seq < to {
                                stats.retransmits.fetch_add(1, Ordering::Relaxed);
                                let deliver = SeqMsg::Deliver {
                                    group: group.clone(),
                                    seq: *seq,
                                    payload: payload.clone(),
                                };
                                let Ok(body) = bincode::serialize(&deliver) else {
                                    continue;
                                };
                                let _ = sock.send((from.clone(), body.into())).await;
                            }
                        }
                    }
                    SeqMsg::JoinAck { .. } | SeqMsg::Deliver { .. } => {
                        // Endpoint-bound messages arriving here are bugs or
                        // forgeries; ignore.
                    }
                }
            }
        })
    };
    Ok(SequencerHandle {
        task,
        addr: bound,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertha::ChunnelConnector;
    use bertha_transport::mem::MemConnector;

    async fn member(seq_addr: &Addr, group: &str) -> bertha_transport::mem::MemSocket {
        let sock = MemConnector.connect(seq_addr.clone()).await.unwrap();
        let join = bincode::serialize(&SeqMsg::Join {
            group: group.into(),
        })
        .unwrap();
        sock.send((seq_addr.clone(), join.into())).await.unwrap();
        let (_, buf) = sock.recv().await.unwrap();
        match bincode::deserialize::<SeqMsg>(&buf).unwrap() {
            SeqMsg::JoinAck { .. } => sock,
            other => panic!("expected JoinAck, got {other:?}"),
        }
    }

    fn uniq(name: &str) -> Addr {
        static N: AtomicU64 = AtomicU64::new(0);
        Addr::Mem(format!("seq-{name}-{}", N.fetch_add(1, Ordering::Relaxed)))
    }

    async fn publish(
        sock: &bertha_transport::mem::MemSocket,
        seq_addr: &Addr,
        group: &str,
        p: &[u8],
    ) {
        let m = bincode::serialize(&SeqMsg::Publish {
            group: group.into(),
            payload: p.to_vec(),
        })
        .unwrap();
        sock.send((seq_addr.clone(), m.into())).await.unwrap();
    }

    async fn next_deliver(sock: &bertha_transport::mem::MemSocket) -> (u64, Vec<u8>) {
        loop {
            let (_, buf) = sock.recv().await.unwrap();
            if let Ok(SeqMsg::Deliver { seq, payload, .. }) = bincode::deserialize(&buf) {
                return (seq, payload);
            }
        }
    }

    #[tokio::test]
    async fn all_members_see_same_order() {
        let seq = run_sequencer(uniq("order")).await.unwrap();
        let a = member(seq.addr(), "g").await;
        let b = member(seq.addr(), "g").await;

        // Both members publish concurrently.
        for i in 0..10u8 {
            publish(&a, seq.addr(), "g", &[0, i]).await;
            publish(&b, seq.addr(), "g", &[1, i]).await;
        }
        let mut seen_a = Vec::new();
        let mut seen_b = Vec::new();
        for _ in 0..20 {
            seen_a.push(next_deliver(&a).await);
            seen_b.push(next_deliver(&b).await);
        }
        assert_eq!(seen_a, seen_b, "identical order at every member");
        let seqs: Vec<u64> = seen_a.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<u64>>(), "dense sequence");
        assert_eq!(seq.stats.sequenced.load(Ordering::Relaxed), 20);
    }

    #[tokio::test]
    async fn nack_replays_history() {
        let seq = run_sequencer(uniq("nack")).await.unwrap();
        let a = member(seq.addr(), "g").await;
        for i in 0..5u8 {
            publish(&a, seq.addr(), "g", &[i]).await;
        }
        for _ in 0..5 {
            next_deliver(&a).await;
        }
        // Ask for 1..4 again.
        let nack = bincode::serialize(&SeqMsg::Nack {
            group: "g".into(),
            from: 1,
            to: 4,
        })
        .unwrap();
        a.send((seq.addr().clone(), nack.into())).await.unwrap();
        let mut replayed = Vec::new();
        for _ in 0..3 {
            replayed.push(next_deliver(&a).await.0);
        }
        assert_eq!(replayed, vec![1, 2, 3]);
        assert_eq!(seq.stats.retransmits.load(Ordering::Relaxed), 3);
    }

    #[tokio::test]
    async fn groups_are_isolated() {
        let seq = run_sequencer(uniq("iso")).await.unwrap();
        let a = member(seq.addr(), "g1").await;
        let b = member(seq.addr(), "g2").await;
        publish(&a, seq.addr(), "g1", b"one").await;
        publish(&b, seq.addr(), "g2", b"two").await;
        // Each group's sequence starts at 0 and members only see their own.
        let (sa, pa) = next_deliver(&a).await;
        let (sb, pb) = next_deliver(&b).await;
        assert_eq!((sa, pa.as_slice()), (0, b"one".as_slice()));
        assert_eq!((sb, pb.as_slice()), (0, b"two".as_slice()));
    }

    #[tokio::test]
    async fn publish_to_unknown_group_is_dropped() {
        let seq = run_sequencer(uniq("unknown")).await.unwrap();
        let a = member(seq.addr(), "g").await;
        publish(&a, seq.addr(), "nope", b"x").await;
        publish(&a, seq.addr(), "g", b"real").await;
        let (s, p) = next_deliver(&a).await;
        assert_eq!((s, p.as_slice()), (0, b"real".as_slice()));
    }
}

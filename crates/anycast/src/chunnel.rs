//! The anycast connector: resolve a logical name through DNS or anycast
//! routing, per deployment.

use crate::resolver::DnsResolver;
use crate::route::AnycastRouteTable;
use bertha::conn::{BoxFut, ChunnelConnection, Datagram};
use bertha::{Addr, ChunnelConnector, Error};
use bertha_transport::{bind_any, AnyConn};
use std::sync::Arc;

/// Which resolution mechanism to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnycastStrategy {
    /// DNS-style resolution (stable, TTL-delayed reaction).
    Dns,
    /// IP-anycast routing (instant reaction, flap-prone).
    Route,
    /// Route when recent resolutions have been stable, DNS otherwise:
    /// "dynamically choose between DNS-based and IP-anycast based
    /// approaches depending on where they are deployed" (§3.2).
    Auto,
}

/// A connector for `Addr::Named` services.
pub struct AnycastConnector {
    dns: Arc<DnsResolver>,
    routes: Arc<AnycastRouteTable>,
    strategy: AnycastStrategy,
    /// Flap count at the last Auto decision, to detect churn.
    last_flaps: std::sync::atomic::AtomicU64,
}

impl AnycastConnector {
    /// A connector over both mechanisms.
    pub fn new(
        dns: Arc<DnsResolver>,
        routes: Arc<AnycastRouteTable>,
        strategy: AnycastStrategy,
    ) -> Self {
        AnycastConnector {
            dns,
            routes,
            strategy,
            last_flaps: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn resolve(&self, name: &str) -> Result<(Addr, AnycastStrategy), Error> {
        match self.strategy {
            AnycastStrategy::Dns => Ok((self.dns.resolve(name)?.addr, AnycastStrategy::Dns)),
            AnycastStrategy::Route => Ok((self.routes.route(name)?.addr, AnycastStrategy::Route)),
            AnycastStrategy::Auto => {
                use std::sync::atomic::Ordering;
                let flaps_now = self.routes.flap_count();
                let flaps_before = self.last_flaps.swap(flaps_now, Ordering::Relaxed);
                if flaps_now > flaps_before {
                    // Routing is churning: fall back to DNS for stability.
                    Ok((self.dns.resolve(name)?.addr, AnycastStrategy::Dns))
                } else {
                    match self.routes.route(name) {
                        Ok(a) => Ok((a.addr, AnycastStrategy::Route)),
                        Err(_) => Ok((self.dns.resolve(name)?.addr, AnycastStrategy::Dns)),
                    }
                }
            }
        }
    }
}

impl ChunnelConnector for AnycastConnector {
    type Addr = Addr;
    type Connection = AnycastConn;

    fn connect(&mut self, addr: Addr) -> BoxFut<'static, Result<AnycastConn, Error>> {
        let resolved = match &addr {
            Addr::Named(name) => self.resolve(name),
            other => Err(Error::Other(format!(
                "anycast connector needs a named address, got {other}"
            ))),
        };
        Box::pin(async move {
            let (instance, via) = resolved?;
            let sock = bind_any(&instance).await?;
            Ok(AnycastConn {
                sock,
                logical: addr,
                instance,
                via,
            })
        })
    }
}

/// Connection produced by [`AnycastConnector`]: the application addresses
/// the logical name; the connection maps it to the chosen instance.
pub struct AnycastConn {
    sock: AnyConn,
    logical: Addr,
    instance: Addr,
    via: AnycastStrategy,
}

impl AnycastConn {
    /// The instance this connection resolved to.
    pub fn instance(&self) -> &Addr {
        &self.instance
    }

    /// Which mechanism resolved it.
    pub fn via(&self) -> AnycastStrategy {
        self.via
    }
}

impl ChunnelConnection for AnycastConn {
    type Data = Datagram;

    fn send(&self, (addr, buf): Datagram) -> BoxFut<'_, Result<(), Error>> {
        let addr = if addr == self.logical {
            self.instance.clone()
        } else {
            addr
        };
        self.sock.send((addr, buf))
    }

    fn recv(&self) -> BoxFut<'_, Result<Datagram, Error>> {
        Box::pin(async move {
            let (from, buf) = self.sock.recv().await?;
            let from = if from == self.instance {
                self.logical.clone()
            } else {
                from
            };
            Ok((from, buf))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::DnsRecord;
    use crate::route::Announcement;
    use bertha_transport::mem::MemSocket;
    use std::time::Duration;

    fn setup(flap_prob: f64) -> (Arc<DnsResolver>, Arc<AnycastRouteTable>) {
        let dns = Arc::new(DnsResolver::new());
        let routes = Arc::new(AnycastRouteTable::with_instability(flap_prob, 7));
        (dns, routes)
    }

    #[tokio::test]
    async fn dns_strategy_end_to_end() {
        let (dns, routes) = setup(0.0);
        let server = MemSocket::bind(Some("anycast-dns-srv".into())).unwrap();
        dns.announce(
            "svc",
            DnsRecord {
                addr: server.local_addr(),
                latency_hint_us: 10,
                ttl: Duration::from_secs(1),
            },
        );
        let mut conn = AnycastConnector::new(dns, routes, AnycastStrategy::Dns);
        let c = conn.connect(Addr::Named("svc".into())).await.unwrap();
        assert_eq!(c.via(), AnycastStrategy::Dns);

        c.send((Addr::Named("svc".into()), b"hi".into()))
            .await
            .unwrap();
        let (from, d) = server.recv().await.unwrap();
        assert_eq!(d, b"hi");
        server.send((from, b"yo".into())).await.unwrap();
        let (from, d) = c.recv().await.unwrap();
        assert_eq!(d, b"yo");
        assert_eq!(
            from,
            Addr::Named("svc".into()),
            "source is the logical name"
        );
    }

    #[tokio::test]
    async fn route_strategy_picks_nearest() {
        let (dns, routes) = setup(0.0);
        routes.announce(
            "svc",
            Announcement {
                addr: Addr::Mem("near".into()),
                distance: 1,
            },
        );
        routes.announce(
            "svc",
            Announcement {
                addr: Addr::Mem("far".into()),
                distance: 8,
            },
        );
        let _near = MemSocket::bind(Some("near".into())).unwrap();
        let mut conn = AnycastConnector::new(dns, routes, AnycastStrategy::Route);
        let c = conn.connect(Addr::Named("svc".into())).await.unwrap();
        assert_eq!(c.instance(), &Addr::Mem("near".into()));
    }

    #[tokio::test]
    async fn auto_falls_back_to_dns_under_churn() {
        let (dns, routes) = setup(1.0); // every resolution flaps
        let server = MemSocket::bind(Some("anycast-auto-srv".into())).unwrap();
        dns.announce(
            "svc",
            DnsRecord {
                addr: server.local_addr(),
                latency_hint_us: 10,
                ttl: Duration::from_secs(1),
            },
        );
        routes.announce(
            "svc",
            Announcement {
                addr: Addr::Mem("r1".into()),
                distance: 1,
            },
        );
        routes.announce(
            "svc",
            Announcement {
                addr: Addr::Mem("r2".into()),
                distance: 2,
            },
        );
        let _r1 = MemSocket::bind(Some("r1".into())).unwrap();
        let _r2 = MemSocket::bind(Some("r2".into())).unwrap();

        let mut conn = AnycastConnector::new(dns, routes, AnycastStrategy::Auto);
        // First connection may route; after observing flaps, Auto switches
        // to DNS.
        let _ = conn.connect(Addr::Named("svc".into())).await.unwrap();
        let mut dns_used = false;
        for _ in 0..5 {
            let c = conn.connect(Addr::Named("svc".into())).await.unwrap();
            if c.via() == AnycastStrategy::Dns {
                dns_used = true;
            }
        }
        assert!(dns_used, "auto strategy never fell back to dns");
    }

    #[tokio::test]
    async fn non_named_address_rejected() {
        let (dns, routes) = setup(0.0);
        let mut conn = AnycastConnector::new(dns, routes, AnycastStrategy::Dns);
        assert!(conn.connect(Addr::Mem("direct".into())).await.is_err());
    }
}

//! Anycast chunnel (§3.2).
//!
//! "IP Anycast has traditionally been used ... to geo-shard requests by
//! routing them to the closest host advertising that IP. However, due to
//! routing instability, many developers instead opt to use DNS for this
//! purpose. Implementing anycast using a Bertha tunnel allows applications
//! to dynamically choose between DNS-based and IP-anycast based approaches
//! depending on where they are deployed."
//!
//! Two resolution mechanisms for one logical name:
//!
//! - [`resolver`]: a DNS-style resolver — TTL'd records with latency
//!   hints, re-resolved per connection; slower to react than routing but
//!   stable;
//! - [`route`]: a simulated IP-anycast route table — instantly picks the
//!   topologically nearest announcement, but *flaps*: under route churn
//!   the nearest instance changes, which is why DNS is often preferred.
//!
//! [`chunnel`] provides the connector that picks a mechanism per
//! deployment: explicitly, or automatically from observed route stability.

#![warn(missing_docs)]

pub mod chunnel;
pub mod resolver;
pub mod route;

pub use chunnel::{AnycastConnector, AnycastStrategy};
pub use resolver::{DnsRecord, DnsResolver};
pub use route::{Announcement, AnycastRouteTable};

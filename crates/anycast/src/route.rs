//! A simulated IP-anycast route table.
//!
//! Instances announce a shared logical address; the "network" routes each
//! client to the topologically nearest announcement. Reaction to new
//! announcements is immediate (routing converges fast in the model), but
//! the table can *flap*: churn temporarily reroutes clients to a
//! non-nearest instance mid-connection-stream — the instability that
//! pushes real deployments toward DNS (§3.2).

use bertha::{Addr, Error};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One instance's route announcement.
#[derive(Clone, Debug, PartialEq)]
pub struct Announcement {
    /// Where the instance actually listens.
    pub addr: Addr,
    /// Topological distance from this client's vantage point (lower is
    /// nearer; an AS-path length in the real system).
    pub distance: u32,
}

/// The route table for one vantage point.
pub struct AnycastRouteTable {
    routes: RwLock<HashMap<String, Vec<Announcement>>>,
    /// Probability that any given resolution is mid-flap and lands on a
    /// uniformly random announcement instead of the nearest one.
    flap_probability: f64,
    rng: parking_lot::Mutex<StdRng>,
    flaps: std::sync::atomic::AtomicU64,
}

impl AnycastRouteTable {
    /// A stable table (no flaps).
    pub fn new() -> Self {
        Self::with_instability(0.0, 0)
    }

    /// A table where each resolution flaps with the given probability.
    pub fn with_instability(flap_probability: f64, seed: u64) -> Self {
        AnycastRouteTable {
            routes: RwLock::new(HashMap::new()),
            flap_probability,
            rng: parking_lot::Mutex::new(StdRng::seed_from_u64(seed)),
            flaps: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Announce an instance of `name`.
    pub fn announce(&self, name: impl Into<String>, ann: Announcement) {
        self.routes
            .write()
            .entry(name.into())
            .or_default()
            .push(ann);
    }

    /// Withdraw an instance of `name` by address.
    pub fn withdraw(&self, name: &str, addr: &Addr) -> bool {
        let mut routes = self.routes.write();
        match routes.get_mut(name) {
            Some(anns) => {
                let before = anns.len();
                anns.retain(|a| &a.addr != addr);
                anns.len() != before
            }
            None => false,
        }
    }

    /// Route to an instance of `name`: the nearest one, unless this
    /// resolution is caught mid-flap.
    pub fn route(&self, name: &str) -> Result<Announcement, Error> {
        let routes = self.routes.read();
        let anns = routes
            .get(name)
            .filter(|a| !a.is_empty())
            .ok_or_else(|| Error::NotFound(format!("anycast name {name:?}")))?;
        let flapping = anns.len() > 1 && {
            let mut rng = self.rng.lock();
            rng.gen::<f64>() < self.flap_probability
        };
        if flapping {
            self.flaps
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let mut rng = self.rng.lock();
            let i = rng.gen_range(0..anns.len());
            return Ok(anns[i].clone());
        }
        Ok(anns
            .iter()
            .min_by_key(|a| a.distance)
            .expect("non-empty")
            .clone())
    }

    /// How many resolutions flapped so far.
    pub fn flap_count(&self) -> u64 {
        self.flaps.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Default for AnycastRouteTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(addr: &str, dist: u32) -> Announcement {
        Announcement {
            addr: Addr::Mem(addr.into()),
            distance: dist,
        }
    }

    #[test]
    fn routes_to_nearest() {
        let t = AnycastRouteTable::new();
        t.announce("svc", ann("far", 9));
        t.announce("svc", ann("near", 2));
        assert_eq!(t.route("svc").unwrap().addr, Addr::Mem("near".into()));
    }

    #[test]
    fn reacts_immediately_to_new_announcement() {
        let t = AnycastRouteTable::new();
        t.announce("svc", ann("far", 9));
        assert_eq!(t.route("svc").unwrap().addr, Addr::Mem("far".into()));
        t.announce("svc", ann("near", 1));
        // No TTL: the very next resolution sees the new instance.
        assert_eq!(t.route("svc").unwrap().addr, Addr::Mem("near".into()));
    }

    #[test]
    fn instability_causes_flaps() {
        let t = AnycastRouteTable::with_instability(0.5, 42);
        t.announce("svc", ann("a", 1));
        t.announce("svc", ann("b", 2));
        let mut non_nearest = 0;
        for _ in 0..1000 {
            if t.route("svc").unwrap().addr != Addr::Mem("a".into()) {
                non_nearest += 1;
            }
        }
        assert!(non_nearest > 100, "expected flaps, saw {non_nearest}");
        assert!(t.flap_count() > 100);
    }

    #[test]
    fn single_instance_never_flaps() {
        let t = AnycastRouteTable::with_instability(1.0, 1);
        t.announce("svc", ann("only", 5));
        for _ in 0..100 {
            assert_eq!(t.route("svc").unwrap().addr, Addr::Mem("only".into()));
        }
        assert_eq!(t.flap_count(), 0);
    }

    #[test]
    fn withdraw_and_missing() {
        let t = AnycastRouteTable::new();
        t.announce("svc", ann("a", 1));
        assert!(t.withdraw("svc", &Addr::Mem("a".into())));
        assert!(t.route("svc").is_err());
        assert!(t.route("other").is_err());
    }
}

//! A DNS-style resolver with TTLs and latency hints.

use bertha::{Addr, Error};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One resolved instance of a service name.
#[derive(Clone, Debug, PartialEq)]
pub struct DnsRecord {
    /// Where the instance listens.
    pub addr: Addr,
    /// Estimated round-trip latency to it, in microseconds (the geo
    /// signal a real DNS-based scheme encodes by returning nearby
    /// instances).
    pub latency_hint_us: u64,
    /// How long the record may be cached.
    pub ttl: Duration,
}

struct CacheEntry {
    records: Vec<DnsRecord>,
    fetched: Instant,
    ttl: Duration,
}

/// The resolver: authoritative records plus a client-side cache.
///
/// The cache models DNS's defining trade-off: answers may be up to one TTL
/// stale, so a new (closer) instance is only discovered after the cache
/// expires — slower to react than anycast routing, but immune to route
/// flaps.
#[derive(Default)]
pub struct DnsResolver {
    records: RwLock<HashMap<String, Vec<DnsRecord>>>,
    cache: RwLock<HashMap<String, CacheEntry>>,
}

impl DnsResolver {
    /// An empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an instance for `name`.
    pub fn announce(&self, name: impl Into<String>, record: DnsRecord) {
        self.records
            .write()
            .entry(name.into())
            .or_default()
            .push(record);
    }

    /// Remove an instance of `name` by address. Returns whether it existed.
    pub fn withdraw(&self, name: &str, addr: &Addr) -> bool {
        let mut records = self.records.write();
        match records.get_mut(name) {
            Some(rs) => {
                let before = rs.len();
                rs.retain(|r| &r.addr != addr);
                rs.len() != before
            }
            None => false,
        }
    }

    /// Resolve `name` to the lowest-latency instance, honoring the cache.
    pub fn resolve(&self, name: &str) -> Result<DnsRecord, Error> {
        if let Some(entry) = self.cache.read().get(name) {
            if entry.fetched.elapsed() < entry.ttl {
                return best(&entry.records)
                    .ok_or_else(|| Error::NotFound(format!("dns name {name:?}")));
            }
        }
        // Cache miss or expired: authoritative lookup.
        let records = self.records.read().get(name).cloned().unwrap_or_default();
        let ttl = records
            .iter()
            .map(|r| r.ttl)
            .min()
            .unwrap_or(Duration::from_secs(1));
        let result = best(&records).ok_or_else(|| Error::NotFound(format!("dns name {name:?}")));
        self.cache.write().insert(
            name.to_owned(),
            CacheEntry {
                records,
                fetched: Instant::now(),
                ttl,
            },
        );
        result
    }

    /// Drop the cache (tests; or an application-forced re-resolution).
    pub fn flush_cache(&self) {
        self.cache.write().clear();
    }
}

fn best(records: &[DnsRecord]) -> Option<DnsRecord> {
    records.iter().min_by_key(|r| r.latency_hint_us).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(addr: &str, lat: u64, ttl_ms: u64) -> DnsRecord {
        DnsRecord {
            addr: Addr::Mem(addr.into()),
            latency_hint_us: lat,
            ttl: Duration::from_millis(ttl_ms),
        }
    }

    #[test]
    fn resolves_lowest_latency() {
        let r = DnsResolver::new();
        r.announce("svc", rec("far", 5000, 1000));
        r.announce("svc", rec("near", 100, 1000));
        assert_eq!(r.resolve("svc").unwrap().addr, Addr::Mem("near".into()));
    }

    #[test]
    fn unknown_name_errors() {
        let r = DnsResolver::new();
        assert!(matches!(r.resolve("nope"), Err(Error::NotFound(_))));
    }

    #[test]
    fn cache_hides_new_instances_until_ttl() {
        let r = DnsResolver::new();
        r.announce("svc", rec("far", 5000, 50));
        assert_eq!(r.resolve("svc").unwrap().addr, Addr::Mem("far".into()));
        // A closer instance appears; the cached answer persists...
        r.announce("svc", rec("near", 10, 50));
        assert_eq!(r.resolve("svc").unwrap().addr, Addr::Mem("far".into()));
        // ...until the TTL passes.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(r.resolve("svc").unwrap().addr, Addr::Mem("near".into()));
    }

    #[test]
    fn withdraw_removes_instance() {
        let r = DnsResolver::new();
        r.announce("svc", rec("a", 10, 1000));
        assert!(r.withdraw("svc", &Addr::Mem("a".into())));
        assert!(!r.withdraw("svc", &Addr::Mem("a".into())));
        r.flush_cache();
        assert!(r.resolve("svc").is_err());
    }
}

//! Test-support crate for the Bertha workspace; see tests/ and examples/.
